"""Tests for the annotation API and tracer (paper Table II semantics)."""

import pytest

from repro.core.annotations import Tracer
from repro.core.tree import NodeKind
from repro.errors import AnnotationError
from repro.simhw import MachineConfig
from repro.simhw.memtrace import AccessPattern, MemSpec

M = MachineConfig(n_cores=4)


def make_tracer(**kwargs) -> Tracer:
    return Tracer(M, **kwargs)


class TestBasicStructure:
    def test_simple_loop_tree(self):
        tr = make_tracer()
        with tr.section("loop"):
            for i in range(3):
                with tr.task(f"i{i}"):
                    tr.compute(1000)
        root = tr.finish()
        assert len(root.children) == 1
        sec = root.children[0]
        assert sec.kind is NodeKind.SEC
        assert sec.name == "loop"
        assert len(sec.children) == 3
        assert all(t.kind is NodeKind.TASK for t in sec.children)
        assert all(t.children[0].kind is NodeKind.U for t in sec.children)

    def test_lock_produces_l_node(self):
        tr = make_tracer()
        with tr.section("s"):
            with tr.task():
                tr.compute(100)
                with tr.lock(7):
                    tr.compute(50)
                tr.compute(100)
        root = tr.finish()
        task = root.children[0].children[0]
        kinds = [c.kind for c in task.children]
        assert kinds == [NodeKind.U, NodeKind.L, NodeKind.U]
        assert task.children[1].lock_id == 7

    def test_top_level_serial_node(self):
        tr = make_tracer()
        tr.compute(500)
        with tr.section("s"):
            with tr.task():
                tr.compute(100)
        tr.compute(300)
        root = tr.finish()
        kinds = [c.kind for c in root.children]
        assert kinds == [NodeKind.U, NodeKind.SEC, NodeKind.U]

    def test_nested_section(self):
        tr = make_tracer()
        with tr.section("outer"):
            with tr.task():
                with tr.section("inner"):
                    with tr.task():
                        tr.compute(10)
        root = tr.finish()
        inner = root.children[0].children[0].children[0]
        assert inner.kind is NodeKind.SEC
        assert inner.name == "inner"

    def test_consecutive_computes_merge(self):
        tr = make_tracer()
        with tr.section("s"):
            with tr.task():
                tr.compute(100)
                tr.compute(200)
                tr.compute(300)
        root = tr.finish()
        task = root.children[0].children[0]
        assert len(task.children) == 1
        assert task.children[0].length == pytest.approx(600)

    def test_nowait_recorded(self):
        tr = make_tracer()
        tr.par_sec_begin("s")
        tr.par_task_begin()
        tr.compute(10)
        tr.par_task_end()
        tr.par_sec_end(barrier=False)
        root = tr.finish()
        assert root.children[0].nowait is True


class TestLengths:
    def test_leaf_length_is_measured_compute(self):
        tr = make_tracer()
        with tr.section("s"):
            with tr.task():
                measured = tr.compute(12345)
        root = tr.finish()
        leaf = root.children[0].children[0].children[0]
        assert leaf.length == pytest.approx(measured)

    def test_overhead_perfectly_subtracted(self):
        tr = make_tracer(overhead_subtraction_accuracy=1.0)
        with tr.section("s"):
            for _ in range(5):
                with tr.task():
                    tr.compute(1000)
        root = tr.finish()
        sec = root.children[0]
        # Net section length equals the sum of the real computation.
        assert sec.length == pytest.approx(5000.0)

    def test_imperfect_subtraction_leaves_residue(self):
        tr = make_tracer(overhead_subtraction_accuracy=0.0)
        with tr.section("s"):
            for _ in range(5):
                with tr.task():
                    tr.compute(1000)
        root = tr.finish()
        sec = root.children[0]
        # All the tracer overhead inside remains in the gross length.
        inside_events = 10 + 1  # 5 task pairs + the sec begin
        expected = 5000.0 + inside_events * M.tracer_overhead_cycles
        assert sec.length == pytest.approx(expected)

    def test_memory_compute_includes_stall(self):
        tr = make_tracer()
        spec = MemSpec(AccessPattern.STREAMING, bytes_touched=64 * 100_000)
        with tr.section("s"):
            with tr.task():
                measured = tr.compute(1000, mem=spec)
        # 100k misses at >= base stall each, far beyond the cpu part.
        assert measured >= 100_000 * M.base_miss_stall

    def test_counters_accumulate(self):
        tr = make_tracer()
        with tr.section("s"):
            with tr.task():
                tr.compute(1000, instructions=800)
        tr.finish()
        assert tr.counters.instructions == 800


class TestSectionCounters:
    def test_per_section_collection(self):
        tr = make_tracer()
        spec = MemSpec(AccessPattern.STREAMING, bytes_touched=64 * 1000)
        with tr.section("hot"):
            with tr.task():
                tr.compute(1000, mem=spec)
        with tr.section("cold"):
            with tr.task():
                tr.compute(1000)
        tr.finish()
        counters = tr.section_counters()
        assert set(counters) == {"hot", "cold"}
        assert counters["hot"][0].llc_misses == pytest.approx(1000)
        assert counters["cold"][0].llc_misses == 0

    def test_repeated_sections_one_delta_each(self):
        tr = make_tracer()
        for _ in range(3):
            with tr.section("loop"):
                with tr.task():
                    tr.compute(100)
        tr.finish()
        assert len(tr.section_counters()["loop"]) == 3

    def test_nested_sections_not_counted_separately(self):
        tr = make_tracer()
        with tr.section("outer"):
            with tr.task():
                with tr.section("inner"):
                    with tr.task():
                        tr.compute(10)
        tr.finish()
        assert set(tr.section_counters()) == {"outer"}


class TestErrorChecking:
    def test_task_outside_section(self):
        tr = make_tracer()
        with pytest.raises(AnnotationError):
            tr.par_task_begin()

    def test_mismatched_end(self):
        tr = make_tracer()
        tr.par_sec_begin("s")
        with pytest.raises(AnnotationError):
            tr.par_task_end()

    def test_sec_end_inside_task(self):
        tr = make_tracer()
        tr.par_sec_begin("s")
        tr.par_task_begin()
        with pytest.raises(AnnotationError):
            tr.par_sec_end()

    def test_compute_directly_in_section(self):
        tr = make_tracer()
        tr.par_sec_begin("s")
        with pytest.raises(AnnotationError):
            tr.compute(100)

    def test_lock_outside_task(self):
        tr = make_tracer()
        with pytest.raises(AnnotationError):
            tr.lock_begin(1)

    def test_nested_locks_rejected(self):
        tr = make_tracer()
        tr.par_sec_begin("s")
        tr.par_task_begin()
        tr.lock_begin(1)
        with pytest.raises(AnnotationError):
            tr.lock_begin(2)

    def test_wrong_lock_end(self):
        tr = make_tracer()
        tr.par_sec_begin("s")
        tr.par_task_begin()
        tr.lock_begin(1)
        with pytest.raises(AnnotationError):
            tr.lock_end(2)

    def test_task_end_with_lock_held(self):
        tr = make_tracer()
        tr.par_sec_begin("s")
        tr.par_task_begin()
        tr.lock_begin(1)
        with pytest.raises(AnnotationError):
            tr.par_task_end()

    def test_section_inside_lock_rejected(self):
        tr = make_tracer()
        tr.par_sec_begin("s")
        tr.par_task_begin()
        tr.lock_begin(1)
        with pytest.raises(AnnotationError):
            tr.par_sec_begin("nested")

    def test_finish_with_open_pairs(self):
        tr = make_tracer()
        tr.par_sec_begin("s")
        with pytest.raises(AnnotationError):
            tr.finish()

    def test_use_after_finish(self):
        tr = make_tracer()
        tr.finish()
        with pytest.raises(AnnotationError):
            tr.compute(10)

    def test_negative_compute(self):
        tr = make_tracer()
        with pytest.raises(AnnotationError):
            tr.compute(-5)

    def test_invalid_accuracy(self):
        with pytest.raises(AnnotationError):
            make_tracer(overhead_subtraction_accuracy=1.5)


class TestOverheadAccounting:
    def test_annotation_events_counted(self):
        tr = make_tracer()
        with tr.section("s"):  # 2 events
            with tr.task():  # 2 events
                tr.compute(10)
                with tr.lock(1):  # 2 events
                    tr.compute(10)
        tr.finish()
        assert tr.annotation_events == 6
        assert tr.overhead_total == pytest.approx(6 * M.tracer_overhead_cycles)

    def test_gross_clock_includes_overhead(self):
        tr = make_tracer()
        with tr.section("s"):
            with tr.task():
                tr.compute(1000)
        tr.finish()
        assert tr.clock == pytest.approx(1000 + 4 * M.tracer_overhead_cycles)
