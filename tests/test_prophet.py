"""Tests for the top-level ParallelProphet facade."""

import pytest

from repro import ParallelProphet
from repro.errors import ConfigurationError
from repro.simhw import MachineConfig
from repro.simhw.memtrace import AccessPattern, MemSpec

M = MachineConfig(n_cores=4)
M12 = MachineConfig(n_cores=12)


def balanced_program(tr):
    with tr.section("loop"):
        for _ in range(8):
            with tr.task():
                tr.compute(50_000)


def memory_program(tr):
    spec = MemSpec(AccessPattern.STREAMING, bytes_touched=18_000_000)
    with tr.section("hot"):
        for _ in range(12):
            with tr.task():
                tr.compute(10_000_000, mem=spec)


@pytest.fixture(scope="module")
def prophet12():
    p = ParallelProphet(machine=M12)
    p.calibration([2, 4, 8, 12])
    return p


class TestWorkflow:
    def test_profile_predict_roundtrip(self):
        prophet = ParallelProphet(machine=M)
        profile = prophet.profile(balanced_program)
        report = prophet.predict(
            profile, threads=[2, 4], methods=("syn", "ff"), memory_model=False
        )
        assert len(report) == 4
        assert report.speedup(method="syn", n_threads=4) == pytest.approx(
            4.0, rel=0.1
        )
        assert report.speedup(method="ff", n_threads=4) == pytest.approx(
            4.0, rel=0.1
        )

    def test_multiple_schedules(self):
        prophet = ParallelProphet(machine=M)
        profile = prophet.profile(balanced_program)
        report = prophet.predict(
            profile,
            threads=[2],
            schedules=["static", "static,1", "dynamic,1"],
            memory_model=False,
        )
        assert {e.schedule for e in report} == {"static", "static,1", "dynamic,1"}

    def test_unknown_method_rejected(self):
        prophet = ParallelProphet(machine=M)
        profile = prophet.profile(balanced_program)
        with pytest.raises(ConfigurationError):
            prophet.predict(profile, threads=[2], methods=("magic",))

    def test_measure_real(self):
        prophet = ParallelProphet(machine=M)
        profile = prophet.profile(balanced_program)
        report = prophet.measure_real(profile, threads=[2, 4])
        # Default runtime overheads (fork/join/dispatch) cost ~9% here.
        assert report.speedup(n_threads=4) == pytest.approx(4.0, rel=0.12)
        assert all(e.method == "real" for e in report)

    def test_memory_model_attached_automatically(self, prophet12):
        profile = prophet12.profile(memory_program)
        prophet12.predict(profile, threads=[2, 12], memory_model=True)
        assert profile.burdens["hot"][12] > 1.0

    def test_memory_model_brackets_real(self, prophet12):
        """PredM must track the saturating Real curve where Pred overshoots
        (the Fig. 2 phenomenon)."""
        profile = prophet12.profile(memory_program)
        real = prophet12.measure_real(profile, threads=[12])
        pred_m = prophet12.predict(profile, threads=[12], memory_model=True)
        pred = prophet12.predict(profile, threads=[12], memory_model=False)
        r = real.speedup(n_threads=12)
        pm = pred_m.speedup(method="syn", n_threads=12)
        pn = pred.speedup(method="syn", n_threads=12)
        assert pn > 2 * r  # memory-blind prediction overshoots badly
        assert abs(pm - r) / r < 0.35  # the paper's ~30% bound

    def test_calibration_cached(self, prophet12):
        a = prophet12.calibration([2, 4])
        b = prophet12.calibration([2, 4])
        assert a is b

    def test_calibration_extends_for_new_counts(self):
        prophet = ParallelProphet(machine=M)
        a = prophet.calibration([2])
        # The default spread {2, 4=n_cores, ...} is already covered: cached.
        assert prophet.calibration([2, 4]) is a
        # A count outside the spread forces a recalibration.
        b = prophet.calibration([3])
        assert 3 in b.psi and 2 in b.psi
        assert a is not b
