"""Tests for the dependence-analysis subsystem (SD3-style strided sets,
loop dependence profiling, annotation suggestion)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.depend import (
    AnnotationAdvice,
    Dependence,
    DependenceKind,
    LoopDependenceProfiler,
    Parallelizability,
    StrideRange,
    ranges_intersect,
    suggest,
)
from repro.errors import ConfigurationError


class TestStrideRange:
    def test_single(self):
        r = StrideRange.single(100)
        assert r.addresses() == [100]
        assert r.contains(100)
        assert not r.contains(101)

    def test_block(self):
        r = StrideRange.block(0, 4, element=8)
        assert r.addresses() == [0, 8, 16, 24]
        assert r.last == 24

    def test_strided(self):
        r = StrideRange(10, 100, 3)
        assert r.addresses() == [10, 110, 210]
        assert r.contains(110)
        assert not r.contains(111)
        assert not r.contains(310)

    def test_negative_stride_normalised(self):
        r = StrideRange(100, -10, 3)
        assert sorted(r.addresses()) == [80, 90, 100]
        assert r.stride == 10

    def test_zero_stride_collapses(self):
        r = StrideRange(5, 0, 99)
        assert len(r) == 1

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            StrideRange(0, 1, 0)


class TestIntersection:
    def test_identical(self):
        a = StrideRange(0, 8, 10)
        assert ranges_intersect(a, a)

    def test_disjoint_intervals(self):
        assert not ranges_intersect(StrideRange(0, 8, 4), StrideRange(1000, 8, 4))

    def test_interleaved_same_stride_no_overlap(self):
        # Evens vs odds.
        assert not ranges_intersect(StrideRange(0, 2, 50), StrideRange(1, 2, 50))

    def test_different_strides_overlap(self):
        # {0,3,6,9,12} and {4,8,12}: both contain 12.
        assert ranges_intersect(StrideRange(0, 3, 5), StrideRange(4, 4, 3))

    def test_different_strides_no_overlap_by_bounds(self):
        # {0,3,6} and {12,16}: gcd solution exists (12) but out of range.
        assert not ranges_intersect(StrideRange(0, 3, 3), StrideRange(12, 4, 2))

    def test_gcd_incompatible(self):
        # {0,6,12,...} and {1,7,13,...}: offset 1 not divisible by gcd 6.
        assert not ranges_intersect(StrideRange(0, 6, 100), StrideRange(1, 6, 100))

    def test_point_in_range(self):
        assert ranges_intersect(StrideRange.single(16), StrideRange(0, 8, 4))
        assert not ranges_intersect(StrideRange.single(17), StrideRange(0, 8, 4))

    def test_point_point(self):
        assert ranges_intersect(StrideRange.single(5), StrideRange.single(5))
        assert not ranges_intersect(StrideRange.single(5), StrideRange.single(6))

    @given(
        st.integers(0, 200),
        st.integers(1, 12),
        st.integers(1, 30),
        st.integers(0, 200),
        st.integers(1, 12),
        st.integers(1, 30),
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_brute_force(self, s1, d1, n1, s2, d2, n2):
        a = StrideRange(s1, d1, n1)
        b = StrideRange(s2, d2, n2)
        expected = bool(set(a.addresses()) & set(b.addresses()))
        assert ranges_intersect(a, b) == expected

    @given(
        st.integers(-100, 100),
        st.integers(-12, 12),
        st.integers(1, 25),
        st.integers(-100, 100),
        st.integers(-12, 12),
        st.integers(1, 25),
    )
    @settings(max_examples=200, deadline=None)
    def test_brute_force_with_negative_strides(self, s1, d1, n1, s2, d2, n2):
        a = StrideRange(s1, d1, n1)
        b = StrideRange(s2, d2, n2)
        expected = bool(set(a.addresses()) & set(b.addresses()))
        assert ranges_intersect(a, b) == expected

    def test_symmetry(self):
        a = StrideRange(0, 3, 7)
        b = StrideRange(2, 5, 6)
        assert ranges_intersect(a, b) == ranges_intersect(b, a)


class TestProfiler:
    def test_doall_loop(self):
        dp = LoopDependenceProfiler("independent")
        for i in range(8):
            with dp.iteration():
                dp.read(StrideRange.block(1000 + 64 * i, 8, 8))
                dp.write(StrideRange.block(8000 + 64 * i, 8, 8))
        report = dp.finish()
        assert report.is_doall
        assert report.n_iterations == 8

    def test_flow_dependence_detected(self):
        # Iteration i writes a[i], iteration i+1 reads a[i].
        dp = LoopDependenceProfiler("recurrence")
        for i in range(6):
            with dp.iteration():
                if i > 0:
                    dp.read(StrideRange.single(1000 + 8 * (i - 1)))
                dp.write(StrideRange.single(1000 + 8 * i))
        report = dp.finish()
        flows = report.of_kind(DependenceKind.FLOW)
        assert flows
        assert flows[0].distance == 1
        assert not report.is_doall

    def test_anti_dependence_detected(self):
        # Iteration i reads a[i+1], then iteration i+1 writes a[i+1].
        dp = LoopDependenceProfiler("war")
        for i in range(5):
            with dp.iteration():
                dp.read(StrideRange.single(1000 + 8 * (i + 1)))
                dp.write(StrideRange.single(1000 + 8 * i))
        report = dp.finish()
        assert report.of_kind(DependenceKind.ANTI)
        assert not report.of_kind(DependenceKind.FLOW)

    def test_output_dependence_detected(self):
        dp = LoopDependenceProfiler("waw")
        for _ in range(4):
            with dp.iteration():
                dp.write(StrideRange.single(4096))  # everyone writes one cell
        report = dp.finish()
        assert report.of_kind(DependenceKind.OUTPUT)

    def test_reduction_detected(self):
        dp = LoopDependenceProfiler("sum")
        acc = StrideRange.single(512)
        for i in range(8):
            with dp.iteration():
                dp.read(StrideRange.block(1000 + 64 * i, 8, 8))
                dp.read(acc)
                dp.write(acc)
        report = dp.finish()
        assert report.reduction_ranges
        assert not report.flow_outside_reductions()

    def test_reduction_plus_real_dependence(self):
        dp = LoopDependenceProfiler("mixed")
        acc = StrideRange.single(512)
        for i in range(6):
            with dp.iteration():
                dp.read(acc)
                dp.write(acc)
                if i > 0:
                    dp.read(StrideRange.single(2000 + 8 * (i - 1)))
                dp.write(StrideRange.single(2000 + 8 * i))
        report = dp.finish()
        assert report.reduction_ranges
        assert report.flow_outside_reductions()  # the recurrence remains

    def test_strided_column_access_conflict(self):
        # Iteration i writes column i of a row-major matrix (stride = row
        # bytes); iteration i+1 reads column i -> strided flow dependence.
        row = 512
        dp = LoopDependenceProfiler("columns")
        for i in range(4):
            with dp.iteration():
                if i > 0:
                    dp.read(StrideRange(8 * (i - 1), row, 16))
                dp.write(StrideRange(8 * i, row, 16))
        report = dp.finish()
        assert report.of_kind(DependenceKind.FLOW)

    def test_access_outside_iteration_rejected(self):
        dp = LoopDependenceProfiler()
        with pytest.raises(ConfigurationError):
            dp.read(StrideRange.single(0))

    def test_nested_iterations_rejected(self):
        dp = LoopDependenceProfiler()
        with pytest.raises(ConfigurationError):
            with dp.iteration():
                with dp.iteration():
                    pass

    def test_finish_twice_rejected(self):
        dp = LoopDependenceProfiler()
        with dp.iteration():
            pass
        dp.finish()
        with pytest.raises(ConfigurationError):
            with dp.iteration():
                pass

    def test_witness_cap(self):
        dp = LoopDependenceProfiler("waw", max_witnesses=3)
        for _ in range(50):
            with dp.iteration():
                dp.write(StrideRange.single(0))
        report = dp.finish()
        assert len(report.dependences) <= 3


class TestSuggest:
    def _report_for(self, builder) -> AnnotationAdvice:
        dp = LoopDependenceProfiler("loop")
        builder(dp)
        return suggest(dp.finish())

    def test_doall_advice(self):
        def build(dp):
            for i in range(4):
                with dp.iteration():
                    dp.write(StrideRange.single(100 + 8 * i))

        advice = self._report_for(build)
        assert advice.verdict is Parallelizability.DOALL
        assert any("PAR_SEC_BEGIN" in s for s in advice.instructions)

    def test_reduction_advice(self):
        def build(dp):
            acc = StrideRange.single(0)
            for i in range(4):
                with dp.iteration():
                    dp.read(acc)
                    dp.write(acc)

        advice = self._report_for(build)
        assert advice.verdict is Parallelizability.REDUCTION
        assert advice.locks_needed == 1
        assert any("LOCK_BEGIN" in s for s in advice.instructions)

    def test_privatizable_advice(self):
        def build(dp):
            tmp = StrideRange.single(64)
            for i in range(4):
                with dp.iteration():
                    dp.write(tmp)  # per-iteration scratch, never read later

        advice = self._report_for(build)
        assert advice.verdict is Parallelizability.PRIVATIZABLE

    def test_serial_advice(self):
        def build(dp):
            for i in range(4):
                with dp.iteration():
                    if i > 0:
                        dp.read(StrideRange.single(8 * (i - 1)))
                    dp.write(StrideRange.single(8 * i))

        advice = self._report_for(build)
        assert advice.verdict is Parallelizability.SERIAL
        assert any("pipeline" in s for s in advice.instructions)

    def test_summary_renders(self):
        def build(dp):
            with dp.iteration():
                dp.write(StrideRange.single(0))

        advice = self._report_for(build)
        text = advice.summary()
        assert "loop" in text
