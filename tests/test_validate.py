"""Tests for repro.validate: invariant checker, differential harness, fuzz."""

import subprocess
import sys

import pytest

from repro.errors import InvariantViolation
from repro.validate import (
    DifferentialHarness,
    InvariantChecker,
    TolerancePolicy,
    Violation,
    get_checker,
    has_nested_sections,
    run_fuzz,
    set_checker,
)


@pytest.fixture
def checker():
    """Enable the process-global checker (raise mode) for one test."""
    c = get_checker()
    prev = (c.enabled, c.mode, c.memo_verify_every)
    c.enabled, c.mode = True, "raise"
    c.reset()
    yield c
    c.enabled, c.mode, c.memo_verify_every = prev
    c.reset()


@pytest.fixture
def recording_checker():
    """Enable the process-global checker in record mode for one test."""
    c = get_checker()
    prev = (c.enabled, c.mode, c.memo_verify_every)
    c.enabled, c.mode = True, "record"
    c.reset()
    yield c
    c.enabled, c.mode, c.memo_verify_every = prev
    c.reset()


# ------------------------------------------------------------------ checker


class TestCheckerModes:
    def test_disabled_by_default(self):
        assert InvariantChecker().enabled is False

    def test_raise_mode_raises_at_fault_site(self):
        c = InvariantChecker(enabled=True, mode="raise")
        with pytest.raises(InvariantViolation, match="speedup_bound"):
            c.check_speedup("ff", 10.0, 2, 4, nested=False, where="here")

    def test_record_mode_collects(self):
        c = InvariantChecker(enabled=True, mode="record")
        c.check_speedup("ff", 10.0, 2, 4, nested=False, where="here")
        c.check_speedup("ff", -1.0, 2, 4, nested=False, where="there")
        assert len(c.violations) == 2
        assert all(isinstance(v, Violation) for v in c.violations)
        assert c.violations[0].check == "speedup_bound"
        assert c.violations[0].where == "here"

    def test_reset_clears_state(self):
        c = InvariantChecker(enabled=True, mode="record")
        c.check_speedup("ff", 10.0, 2, 4, nested=False, where="x")
        c.reset()
        assert c.violations == [] and c.checks_run == 0

    def test_violation_str_is_descriptive(self):
        v = Violation("work_conservation", "kernel.run", "lost cycles",
                      observed=1.0, expected=2.0)
        text = str(v)
        assert "work_conservation" in text
        assert "kernel.run" in text
        assert "observed=1.0" in text

    def test_set_checker_swaps_global(self):
        old = get_checker()
        try:
            mine = set_checker(InvariantChecker(enabled=True, mode="record"))
            assert get_checker() is mine
        finally:
            set_checker(old)

    def test_env_var_enables_at_import(self):
        code = (
            "from repro.validate import get_checker; "
            "import sys; sys.exit(0 if get_checker().enabled else 1)"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"REPRO_VALIDATE": "1", "PYTHONPATH": "src"},
            cwd=".",
        )
        assert proc.returncode == 0


class TestSpeedupBound:
    def c(self):
        return InvariantChecker(enabled=True, mode="record")

    def test_ff_bound_is_thread_count(self):
        c = self.c()
        c.check_speedup("ff", 4.0, 4, 12, nested=False, where="x")
        assert not c.violations
        c.check_speedup("ff", 4.001, 4, 12, nested=False, where="x")
        assert c.violations

    def test_replay_bound_is_min_threads_cores(self):
        c = self.c()
        # 8 threads on 4 cores: cap is 4 (plus syn slack), not 8.
        c.check_speedup("syn", 7.0, 8, 4, nested=False, where="x")
        assert c.violations

    def test_nested_replay_may_scale_to_cores(self):
        c = self.c()
        # The Fig. 7 shape: 2-thread nested program using all 4 cores.
        c.check_speedup("real", 4.0, 2, 4, nested=True, where="x")
        assert not c.violations

    def test_nonpositive_speedup_fails(self):
        c = self.c()
        c.check_speedup("real", 0.0, 2, 4, nested=False, where="x")
        assert c.violations

    def test_baseline_methods_not_checked(self):
        c = self.c()
        c.check_speedup("suitability", 99.0, 2, 4, nested=False, where="x")
        assert not c.violations and c.checks_run == 0


class TestKernelChecks:
    def test_event_time_monotonicity(self):
        c = InvariantChecker(enabled=True, mode="record")
        c.check_event_time(2.0, 1.0)
        assert not c.violations
        c.check_event_time(1.0, 2.0)
        assert c.violations[0].check == "time_monotonic"

    def test_work_conservation_exact(self):
        c = InvariantChecker(enabled=True, mode="record")
        c.check_work_conservation(100.0, 100.0, exact=True, where="w")
        assert not c.violations
        c.check_work_conservation(100.0, 150.0, exact=True, where="w")
        assert c.violations  # demand-free run must not create cycles

    def test_work_conservation_lower_bound(self):
        c = InvariantChecker(enabled=True, mode="record")
        # Under DRAM contention busy cycles may exceed base cycles...
        c.check_work_conservation(100.0, 150.0, exact=False, where="w")
        assert not c.violations
        # ...but never fall short.
        c.check_work_conservation(100.0, 90.0, exact=False, where="w")
        assert c.violations


class TestMemoSampling:
    def test_first_hit_then_every_nth(self):
        c = InvariantChecker(enabled=True, memo_verify_every=4)
        sampled = [c.sample_memo_hit() for _ in range(9)]
        assert sampled == [True, False, False, False, True,
                           False, False, False, True]

    def test_every_one_samples_all(self):
        c = InvariantChecker(enabled=True, memo_verify_every=1)
        assert all(c.sample_memo_hit() for _ in range(5))

    def test_parity_passes_on_equal_runs(self):
        from repro.core.executor import SectionRun

        c = InvariantChecker(enabled=True, mode="record")
        a = SectionRun("s", 100.0, 5.0, 2, 1)
        b = SectionRun("s", 100.0, 5.0, 2, 1)
        c.check_memo_parity(a, b, where="x")
        assert not c.violations

    def test_parity_catches_divergence(self):
        from repro.core.executor import SectionRun

        c = InvariantChecker(enabled=True, mode="record")
        a = SectionRun("s", 100.0, 5.0, 2, 1)
        b = SectionRun("s", 100.5, 5.0, 2, 1)
        c.check_memo_parity(a, b, where="x")
        assert c.violations[0].check == "section_memo_parity"


# --------------------------------------------------------- live pipeline


def _locky_program(tr):
    with tr.section("s"):
        for i in range(4):
            with tr.task():
                tr.compute(30_000.0 + 1_000.0 * i)
                with tr.lock(1):
                    tr.compute(10_000.0)


class TestInstrumentedPipeline:
    """The instrumented kernel/executor/prophet runs clean (raise mode)
    on configurations chosen to exercise every hook: preemption (small
    timeslice), DRAM demand, locks, memoised replays, nested sections."""

    def test_preemptive_locky_replay_green(self, checker):
        from repro.core.executor import ParallelExecutor, ReplayMode
        from repro.core.profiler import IntervalProfiler
        from repro.simhw import MachineConfig

        m = MachineConfig(n_cores=2, timeslice_cycles=5_000.0)
        profile = IntervalProfiler(m).profile(_locky_program)
        ex = ParallelExecutor(machine=m)
        result = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        assert result.speedup > 0
        assert checker.checks_run > 0

    def test_memory_demand_replay_green(self, checker):
        from repro.core.executor import ParallelExecutor, ReplayMode
        from repro.core.profiler import IntervalProfiler
        from repro.simhw import MachineConfig
        from repro.simhw.memtrace import AccessPattern, MemSpec

        m = MachineConfig(n_cores=4)
        spec = MemSpec(AccessPattern.STREAMING, bytes_touched=8_000_000)

        def program(tr):
            with tr.section("mem"):
                for _ in range(4):
                    with tr.task():
                        tr.compute(50_000.0, mem=spec)

        profile = IntervalProfiler(m).profile(program)
        ex = ParallelExecutor(machine=m)
        result = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        assert result.speedup > 0
        assert checker.checks_run > 0

    def test_pool_worker_chunk_forces_raise_mode(self, recording_checker):
        """Fork-started sweep workers inherit the parent checker's record
        mode; the worker entry point must flip to raise so violations come
        back as structured SweepTaskFailures instead of dying silently."""
        from repro.core.batch import _run_taskset
        from repro.core.profiler import IntervalProfiler
        from repro.runtime.overhead import DEFAULT_OVERHEADS
        from repro.simhw import MachineConfig

        profile = IntervalProfiler(MachineConfig(n_cores=4)).profile(
            _locky_program
        )
        _run_taskset(profile, DEFAULT_OVERHEADS, [], collect_metrics=True)
        assert recording_checker.mode == "raise"

    def test_prophet_grid_green(self, checker):
        from repro import ParallelProphet
        from repro.simhw import MachineConfig
        from repro.workloads import get_workload

        prophet = ParallelProphet(machine=MachineConfig(n_cores=4))
        wl = get_workload("npb_ep")
        profile = prophet.profile(wl.program)
        prophet.predict(profile, [2, 4], memory_model=False)
        prophet.measure_real(profile, [2, 4])
        assert checker.checks_run > 0

    def test_memo_hits_are_verified(self, checker):
        from repro.core.executor import (
            ParallelExecutor,
            ReplayMode,
            clear_section_memo,
        )
        from repro.core.profiler import IntervalProfiler
        from repro.simhw import MachineConfig

        checker.memo_verify_every = 1  # verify every hit
        clear_section_memo()
        m = MachineConfig(n_cores=4)
        profile = IntervalProfiler(m).profile(_locky_program)
        ex = ParallelExecutor(machine=m)
        ex.execute_profile(profile.tree, 2, ReplayMode.REAL)  # populate
        before = checker.checks_run
        ex.execute_profile(profile.tree, 2, ReplayMode.REAL)  # memo hits
        assert checker.checks_run > before  # parity checks actually ran

    def test_poisoned_memo_is_caught(self, checker):
        import repro.core.executor as executor_module
        from repro.core.executor import (
            ParallelExecutor,
            ReplayMode,
            clear_section_memo,
        )
        from repro.core.profiler import IntervalProfiler
        from repro.simhw import MachineConfig

        checker.memo_verify_every = 1
        clear_section_memo()
        m = MachineConfig(n_cores=4)
        profile = IntervalProfiler(m).profile(_locky_program)
        ex = ParallelExecutor(machine=m)
        ex.execute_profile(profile.tree, 2, ReplayMode.REAL)
        # Corrupt every cached SectionRun the way a nondeterministic replay
        # would: the next hit must be caught by the sampled exact re-run.
        for run in executor_module._SECTION_MEMO._data.values():
            run.gross_cycles += 1.0
        with pytest.raises(InvariantViolation, match="section_memo_parity"):
            ex.execute_profile(profile.tree, 2, ReplayMode.REAL)
        clear_section_memo()  # drop the poisoned entries


# ----------------------------------------------------------- differential


class TestNestedPredicate:
    def test_flat_section_is_not_nested(self):
        from repro.core.profiler import IntervalProfiler
        from repro.simhw import MachineConfig

        profile = IntervalProfiler(MachineConfig(n_cores=4)).profile(
            _locky_program
        )
        assert has_nested_sections(profile.tree) is False

    def test_fig7_shape_is_nested(self):
        from repro.core.profiler import IntervalProfiler
        from repro.simhw import MachineConfig

        def program(tr):
            with tr.section("outer"):
                with tr.task():
                    with tr.section("inner"):
                        with tr.task():
                            tr.compute(10_000.0)

        profile = IntervalProfiler(MachineConfig(n_cores=4)).profile(program)
        assert has_nested_sections(profile.tree) is True


class TestDifferentialHarness:
    def test_fig7_ff_divergence_is_expected_not_violation(self, checker):
        """The paper's own Fig. 7 result — FF predicting 1.5× where the
        real nested-loop speedup is 2.0× — must classify as an *expected*
        divergence with the documented kind, not a validation failure."""
        from repro import ParallelProphet
        from repro.core.profiler import IntervalProfiler
        from repro.runtime import RuntimeOverheads
        from repro.simhw import MachineConfig

        def fig7_program(tr):
            unit = 1e6
            with tr.section("Loop1"):
                with tr.task("I0"):
                    with tr.section("LoopA"):
                        with tr.task():
                            tr.compute(10 * unit)
                        with tr.task():
                            tr.compute(5 * unit)
                with tr.task("I1"):
                    with tr.section("LoopB"):
                        with tr.task():
                            tr.compute(5 * unit)
                        with tr.task():
                            tr.compute(10 * unit)

        m2 = MachineConfig(n_cores=2, timeslice_cycles=20_000.0)
        prophet = ParallelProphet(
            machine=m2, overheads=RuntimeOverheads().scaled(0.0)
        )
        profile = IntervalProfiler(m2).profile(fig7_program)
        harness = DifferentialHarness(prophet)
        report = harness.run(
            {"fig7": profile}, threads=[2], memory_model=False
        )
        assert not report.violations
        assert len(report.expected_divergences) == 1
        rec = report.expected_divergences[0]
        assert rec.kind == "ff_nested_underprediction"
        assert rec.speedups["ff"] == pytest.approx(1.5, abs=0.05)
        assert rec.speedups["real"] == pytest.approx(2.0, abs=0.1)
        assert "Fig. 7" in rec.detail

    def test_agreeing_point_is_ok(self, checker):
        from repro import ParallelProphet
        from repro.core.profiler import IntervalProfiler
        from repro.runtime import RuntimeOverheads
        from repro.simhw import MachineConfig

        def flat(tr):
            with tr.section("s"):
                for _ in range(4):
                    with tr.task():
                        tr.compute(100_000.0)

        m = MachineConfig(n_cores=4)
        prophet = ParallelProphet(
            machine=m, overheads=RuntimeOverheads().scaled(0.0)
        )
        profile = IntervalProfiler(m).profile(flat)
        report = DifferentialHarness(prophet).run(
            {"flat": profile}, threads=[2, 4], memory_model=False
        )
        assert [r.status for r in report.records] == ["ok", "ok"]

    def test_tolerance_policy_flags_violation(self):
        """An artificially intolerant policy turns ordinary model error
        into violations — proving the classifier actually compares."""
        from repro import ParallelProphet
        from repro.core.profiler import IntervalProfiler
        from repro.runtime import RuntimeOverheads
        from repro.simhw import MachineConfig

        def imbalanced(tr):
            with tr.section("s"):
                with tr.task():
                    tr.compute(100_000.0)
                with tr.task():
                    tr.compute(10_000.0)

        m = MachineConfig(n_cores=4)
        prophet = ParallelProphet(
            machine=m, overheads=RuntimeOverheads().scaled(0.0)
        )
        profile = IntervalProfiler(m).profile(imbalanced)
        strict = TolerancePolicy(syn_vs_real=1e-15, ff_vs_real=1e-15)
        report = DifferentialHarness(prophet, policy=strict).run(
            {"imb": profile}, threads=[3], memory_model=False
        )
        # With zero tolerance any float-level difference trips; the point
        # here is the plumbing, not the model.
        assert report.records[0].status in ("ok", "violation", "expected")
        loose = TolerancePolicy(syn_vs_real=10.0, ff_vs_real=10.0)
        report2 = DifferentialHarness(prophet, policy=loose).run(
            {"imb": profile}, threads=[3], memory_model=False
        )
        assert report2.records[0].status == "ok"

    def test_summary_counts(self, checker):
        report = run_fuzz(n_programs=2, seed=3)
        text = report.summary()
        assert "grid point(s)" in text
        assert "violation(s)" in text
        assert len(report.records) == len(report.ok) + len(
            report.expected_divergences
        ) + len(report.violations)


class TestFuzz:
    def test_fuzz_is_deterministic(self):
        a = run_fuzz(n_programs=3, seed=11)
        b = run_fuzz(n_programs=3, seed=11)
        assert a.summary() == b.summary()
        assert [
            (r.point, r.status, r.kind, r.speedups) for r in a.records
        ] == [(r.point, r.status, r.kind, r.speedups) for r in b.records]

    def test_fuzz_seeds_differ(self):
        a = run_fuzz(n_programs=3, seed=1)
        b = run_fuzz(n_programs=3, seed=2)
        assert [r.speedups for r in a.records] != [
            r.speedups for r in b.records
        ]

    def test_fuzz_green_under_raise_mode(self, checker):
        """Every invariant holds (raise mode: first failure throws) across
        seeded random programs through the full pipeline."""
        report = run_fuzz(n_programs=5, seed=0)
        assert not report.violations
        assert checker.checks_run > 0
