"""Tests for machine configuration and unit conversions."""

import pytest

from repro.errors import ConfigurationError
from repro.simhw import MachineConfig, WESTMERE_12


class TestMachineConfigValidation:
    def test_default_matches_paper_testbed(self):
        assert WESTMERE_12.n_cores == 12
        assert WESTMERE_12.llc_bytes == 12 * 2**20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_cores": 0},
            {"freq_ghz": 0.0},
            {"freq_ghz": -1.0},
            {"line_size": 0},
            {"line_size": 48},  # not a power of two
            {"llc_bytes": 0},
            {"llc_assoc": 0},
            {"base_miss_stall": -1.0},
            {"dram_peak_gbs": 0.0},
            {"dram_queue_gain": -0.1},
            {"timeslice_cycles": 0.0},
            {"tracer_overhead_cycles": -1.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MachineConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            WESTMERE_12.n_cores = 4  # type: ignore[misc]


class TestConversions:
    def test_freq_hz(self):
        m = MachineConfig(freq_ghz=2.0)
        assert m.freq_hz == 2.0e9

    def test_cycles_seconds_roundtrip(self):
        m = MachineConfig(freq_ghz=2.8)
        assert m.seconds_to_cycles(m.cycles_to_seconds(1e9)) == pytest.approx(1e9)

    def test_traffic_mbs(self):
        m = MachineConfig(freq_ghz=1.0, line_size=64)
        # 1e6 misses over 1e9 cycles at 1 GHz = 1 second -> 64 MB/s.
        assert m.traffic_mbs(1e6, 1e9) == pytest.approx(64.0)

    def test_traffic_zero_cycles(self):
        assert MachineConfig().traffic_mbs(100, 0) == 0.0

    def test_with_cores(self):
        m = WESTMERE_12.with_cores(4)
        assert m.n_cores == 4
        assert m.llc_bytes == WESTMERE_12.llc_bytes

    def test_dram_peak_bytes(self):
        m = MachineConfig(dram_peak_gbs=12.0)
        assert m.dram_peak_bytes_per_sec == 12.0e9
