"""Golden tests for the Chrome-trace/Perfetto timeline export.

A small 2-thread workload is replayed with the tracer enabled; the exported
JSON must be schema-valid Trace Event Format, carry one named track per
simulated core and per simulated thread, and be byte-identical across runs
(the simulation and the export are both deterministic).
"""

from __future__ import annotations

import json

import pytest

from repro.core.executor import ParallelExecutor, ReplayMode
from repro.core.profiler import IntervalProfiler
from repro.core.tree import Node, NodeKind, ProgramTree
from repro.obs import Tracer, to_chrome_trace, write_chrome_trace
from repro.simhw import MachineConfig

M2 = MachineConfig(n_cores=2)

#: Trace Event Format phases the exporter may emit.
VALID_PHASES = {"X", "I", "C", "M"}


def _profile():
    def program(tr):
        with tr.section("loop"):
            for _ in range(4):
                with tr.task():
                    tr.compute(50_000.0)
        tr.compute(20_000.0)
        with tr.section("tail"):
            for _ in range(2):
                with tr.task():
                    tr.compute(30_000.0)

    return IntervalProfiler(M2).profile(program)


def _trace_events(profile):
    tracer = Tracer(enabled=True)
    ex = ParallelExecutor(M2, tracer=tracer)
    ex.execute_profile(profile.tree, 2, ReplayMode.REAL)
    return tracer.events()


class TestChromeTraceExport:
    def test_schema(self):
        profile = _profile()
        events = _trace_events(profile)
        assert events, "enabled tracer recorded nothing"
        data = to_chrome_trace(events, freq_ghz=M2.freq_ghz)
        assert set(data) == {"traceEvents", "displayTimeUnit"}
        records = data["traceEvents"]
        assert records
        for rec in records:
            assert rec["ph"] in VALID_PHASES
            assert isinstance(rec["name"], str) and rec["name"]
            assert rec["pid"] == 1
            assert isinstance(rec["tid"], int)
            if rec["ph"] == "M":
                assert rec["name"] in ("process_name", "thread_name",
                                       "thread_sort_index")
            else:
                assert rec["ts"] >= 0.0
            if rec["ph"] == "X":
                assert rec["dur"] >= 0.0
            if rec["ph"] == "I":
                assert rec["s"] == "t"
            if rec["ph"] == "C":
                assert "value" in rec["args"]

    def test_one_track_per_core_and_thread(self):
        profile = _profile()
        data = to_chrome_trace(_trace_events(profile), freq_ghz=M2.freq_ghz)
        names = {
            rec["args"]["name"]
            for rec in data["traceEvents"]
            if rec["ph"] == "M" and rec["name"] == "thread_name"
        }
        # One track per simulated core ...
        assert {"cpu0", "cpu1"} <= names
        # ... and one per simulated thread (master + both OMP workers).
        assert "thread:replay-master" in names
        assert any(n.startswith("thread:omp-w") for n in names)
        # The executor adds a program-level sections track.
        assert "sections" in names

    def test_cpu_tracks_sort_first(self):
        profile = _profile()
        data = to_chrome_trace(_trace_events(profile), freq_ghz=M2.freq_ghz)
        tid_of = {
            rec["args"]["name"]: rec["tid"]
            for rec in data["traceEvents"]
            if rec["ph"] == "M" and rec["name"] == "thread_name"
        }
        assert tid_of["cpu0"] == 0
        assert tid_of["cpu1"] == 1
        assert all(
            tid_of[name] > tid_of["cpu1"]
            for name in tid_of
            if not name.startswith("cpu")
        )

    def test_spans_cover_sections_in_program_order(self):
        profile = _profile()
        data = to_chrome_trace(_trace_events(profile), freq_ghz=M2.freq_ghz)
        tid_of = {
            rec["args"]["name"]: rec["tid"]
            for rec in data["traceEvents"]
            if rec["ph"] == "M" and rec["name"] == "thread_name"
        }
        section_spans = [
            rec
            for rec in data["traceEvents"]
            if rec["ph"] == "X" and rec["tid"] == tid_of["sections"]
        ]
        assert [s["name"] for s in section_spans] == ["loop", "tail"]
        # The tail section starts after the loop section plus the serial gap.
        assert section_spans[1]["ts"] > (
            section_spans[0]["ts"] + section_spans[0]["dur"]
        )

    def test_repeated_section_emits_one_span_per_repeat(self):
        # Tracing bypasses the per-call replay cache: a ``repeat=3`` section
        # must appear as three back-to-back spans on the sections track, not
        # one span stretched over a single cached replay.
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC, name="body", repeat=3))
        task = sec.add(Node(NodeKind.TASK))
        task.add(Node(NodeKind.U, length=40_000.0, cpu_cycles=40_000.0))
        tracer = Tracer(enabled=True)
        ex = ParallelExecutor(M2, tracer=tracer)
        ex.execute_profile(ProgramTree(root), 2, ReplayMode.REAL)
        data = to_chrome_trace(tracer.events(), freq_ghz=M2.freq_ghz)
        tid_of = {
            rec["args"]["name"]: rec["tid"]
            for rec in data["traceEvents"]
            if rec["ph"] == "M" and rec["name"] == "thread_name"
        }
        spans = [
            rec
            for rec in data["traceEvents"]
            if rec["ph"] == "X" and rec["tid"] == tid_of["sections"]
        ]
        assert [s["name"] for s in spans] == ["body"] * 3
        for earlier, later in zip(spans, spans[1:]):
            assert later["ts"] >= earlier["ts"] + earlier["dur"] - 1e-9
        assert all(s["dur"] > 0.0 for s in spans)

    def test_byte_determinism(self):
        profile = _profile()
        one = json.dumps(
            to_chrome_trace(_trace_events(profile), freq_ghz=M2.freq_ghz),
            sort_keys=True,
        )
        two = json.dumps(
            to_chrome_trace(_trace_events(profile), freq_ghz=M2.freq_ghz),
            sort_keys=True,
        )
        assert one == two

    def test_write_round_trip(self, tmp_path):
        profile = _profile()
        out = tmp_path / "trace.json"
        written = write_chrome_trace(
            _trace_events(profile), out, freq_ghz=M2.freq_ghz
        )
        loaded = json.loads(out.read_text())
        assert loaded == written

    def test_disabled_tracer_records_nothing(self):
        profile = _profile()
        tracer = Tracer(enabled=False)
        ex = ParallelExecutor(M2, tracer=tracer)
        result = ex.execute_profile(profile.tree, 2, ReplayMode.REAL)
        assert result.total_cycles > 0
        assert len(tracer) == 0

    def test_tracing_does_not_change_results(self):
        profile = _profile()
        quiet = ParallelExecutor(M2, tracer=Tracer(enabled=False))
        loud = ParallelExecutor(M2, tracer=Tracer(enabled=True))
        r1 = quiet.execute_profile(profile.tree, 2, ReplayMode.REAL)
        r2 = loud.execute_profile(profile.tree, 2, ReplayMode.REAL)
        assert r1.total_cycles == pytest.approx(r2.total_cycles, rel=0, abs=0)

    def test_no_freq_scale_defaults_to_cycles(self):
        tracer = Tracer(enabled=True)
        tracer.span("a", ts=100.0, dur=50.0, track="cpu0")
        data = to_chrome_trace(tracer.events())
        span = [r for r in data["traceEvents"] if r["ph"] == "X"][0]
        assert span["ts"] == 100.0
        assert span["dur"] == 50.0
