"""Tests for profile serialisation (save/load round-trips)."""

import json

import pytest

from repro.core.profiler import IntervalProfiler
from repro.core.serialize import (
    FORMAT_VERSION,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
    tree_from_dict,
    tree_to_dict,
)
from repro.core.tree import Node, NodeKind, ProgramTree
from repro.errors import ConfigurationError
from repro.simhw import MachineConfig
from repro.simhw.memtrace import AccessPattern, MemSpec

M = MachineConfig(n_cores=4)


def sample_profile(compress=True):
    def program(tr):
        tr.compute(1000)
        spec = MemSpec(AccessPattern.STREAMING, bytes_touched=64 * 10_000)
        for _ in range(2):
            with tr.section("loop"):
                for i in range(5):
                    with tr.task():
                        tr.compute(2_000 + i, mem=spec)
                        with tr.lock(1):
                            tr.compute(100)

    return IntervalProfiler(M, compress=compress).profile(program)


class TestTreeRoundtrip:
    def test_lengths_preserved(self):
        tree = sample_profile().tree
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored.serial_cycles() == pytest.approx(tree.serial_cycles())

    def test_structure_preserved(self):
        tree = sample_profile().tree
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored.logical_nodes() == tree.logical_nodes()
        assert restored.max_depth() == tree.max_depth()
        restored.root.validate()

    def test_sharing_preserved(self):
        """Dictionary-compressed DAGs must not blow up into trees."""
        tree = sample_profile(compress=True).tree
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored.unique_nodes() == tree.unique_nodes()

    def test_shared_nodes_are_identical_objects(self):
        root = Node(NodeKind.ROOT)
        shared = Node(NodeKind.SEC, name="s")
        task = shared.add(Node(NodeKind.TASK))
        task.add(Node(NodeKind.U, length=10))
        root.children.extend([shared, shared])
        restored = tree_from_dict(tree_to_dict(ProgramTree(root)))
        assert restored.root.children[0] is restored.root.children[1]

    def test_node_fields_preserved(self):
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC, name="x", nowait=True))
        task = sec.add(Node(NodeKind.TASK, repeat=7))
        task.add(
            Node(
                NodeKind.L,
                length=123.5,
                lock_id=3,
                cpu_cycles=100.0,
                instructions=90.0,
                llc_misses=2.5,
            )
        )
        restored = tree_from_dict(tree_to_dict(ProgramTree(root)))
        leaf = restored.root.children[0].children[0].children[0]
        assert leaf.lock_id == 3
        assert leaf.length == 123.5
        assert leaf.llc_misses == 2.5
        assert restored.root.children[0].nowait is True
        assert restored.root.children[0].children[0].repeat == 7


class TestNodeSlotParity:
    """Guards against the Node analogue of the dropped-machine-field bug:
    the per-node dict is derived from ``Node.__slots__``, so a slot added
    later is serialised automatically instead of silently lost."""

    def test_node_dict_covers_every_slot(self):
        data = tree_to_dict(sample_profile().tree)
        expected = (set(Node.__slots__) - {"children"}) | {"children", "kind"}
        for raw in data["nodes"]:
            assert set(raw) == expected

    def test_counterset_fields_covered_by_section_dict(self):
        from dataclasses import fields

        from repro.simhw.counters import CounterSet

        data = profile_to_dict(sample_profile())
        section = next(iter(data["sections"].values()))
        assert {f.name for f in fields(CounterSet)} <= set(section)


class TestMalformedData:
    """Structural defects in loaded profiles must surface as
    ConfigurationError — never a bare KeyError/ValueError from deep inside
    (profiles are the format users hand-edit and pass between machines)."""

    def test_missing_node_field_raises_configuration_error(self):
        data = tree_to_dict(sample_profile().tree)
        del data["nodes"][0]["length"]
        with pytest.raises(ConfigurationError, match="node 0"):
            tree_from_dict(data)

    def test_bad_kind_raises_configuration_error(self):
        data = tree_to_dict(sample_profile().tree)
        data["nodes"][0]["kind"] = "not-a-kind"
        with pytest.raises(ConfigurationError):
            tree_from_dict(data)

    def test_negative_counter_raises_configuration_error(self):
        data = tree_to_dict(sample_profile().tree)
        leaf = next(n for n in data["nodes"] if not n["children"])
        leaf["cpu_cycles"] = -1.0
        with pytest.raises(ConfigurationError, match="cpu_cycles"):
            tree_from_dict(data)

    def test_missing_profile_key_raises_configuration_error(self):
        data = profile_to_dict(sample_profile())
        del data["machine"]
        with pytest.raises(ConfigurationError, match="malformed profile"):
            profile_from_dict(data)

    def test_negative_section_counter_raises_configuration_error(self):
        data = profile_to_dict(sample_profile())
        next(iter(data["sections"].values()))["cycles"] = -5.0
        with pytest.raises(ConfigurationError, match="cycles"):
            profile_from_dict(data)

    def test_negative_burden_raises_configuration_error(self):
        profile = sample_profile()
        profile.burdens["loop"] = {4: 1.2}
        data = profile_to_dict(profile)
        data["burdens"]["loop"]["4"] = -0.5
        with pytest.raises(ConfigurationError, match="burden"):
            profile_from_dict(data)

    def test_wrong_type_section_raises_configuration_error(self):
        data = profile_to_dict(sample_profile())
        data["sections"] = ["not", "a", "mapping"]
        with pytest.raises(ConfigurationError):
            profile_from_dict(data)


class TestDagSharingRoundtrip:
    def test_compressed_profile_dag_roundtrip(self):
        """Round-trip a dictionary-compressed tree and assert the DAG shape
        — not just the counts: every shared subtree must come back as one
        shared object, with measurements bit-identical."""
        profile = sample_profile(compress=True)
        tree = profile.tree
        assert tree.unique_nodes() < tree.logical_nodes()  # sharing exists
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored.unique_nodes() == tree.unique_nodes()
        assert restored.logical_nodes() == tree.logical_nodes()

        def object_census(t):
            seen = set()
            stack = [t.root]
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                stack.extend(node.children)
            return len(seen)

        # Physical object count equals unique_nodes: sharing is by object
        # identity, not equal copies.
        assert object_census(restored) == restored.unique_nodes()

        def measurements(t):
            out = []

            def visit(node):
                out.append(
                    (node.kind.value, node.length, node.cpu_cycles,
                     node.instructions, node.llc_misses, node.repeat)
                )
                for c in node.children:
                    visit(c)

            visit(t.root)
            return out

        assert measurements(restored) == measurements(tree)


class TestProfileRoundtrip:
    def test_full_roundtrip(self, tmp_path):
        profile = sample_profile()
        profile.burdens["loop"] = {2: 1.1, 4: 1.25}
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        restored = load_profile(path)

        assert restored.serial_cycles() == pytest.approx(profile.serial_cycles())
        assert restored.machine == profile.machine
        assert set(restored.sections) == {"loop"}
        assert restored.sections["loop"].invocations == 2
        assert restored.sections["loop"].total.llc_misses == pytest.approx(
            profile.sections["loop"].total.llc_misses
        )
        assert restored.burdens["loop"][4] == pytest.approx(1.25)
        assert restored.stats.annotation_events == profile.stats.annotation_events

    def test_burden_keys_are_ints(self, tmp_path):
        profile = sample_profile()
        profile.burdens["loop"] = {8: 1.5}
        path = tmp_path / "p.json"
        save_profile(profile, path)
        restored = load_profile(path)
        assert restored.burden_for("loop", 8) == pytest.approx(1.5)

    def test_predictions_identical_after_roundtrip(self, tmp_path):
        from repro import ParallelProphet

        prophet = ParallelProphet(machine=M)
        profile = sample_profile()
        path = tmp_path / "p.json"
        save_profile(profile, path)
        restored = load_profile(path)
        a = prophet.predict(profile, [4], memory_model=False)
        b = prophet.predict(restored, [4], memory_model=False)
        assert a.speedup(method="syn", n_threads=4) == pytest.approx(
            b.speedup(method="syn", n_threads=4)
        )

    def test_version_check(self):
        data = profile_to_dict(sample_profile())
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ConfigurationError):
            profile_from_dict(data)

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "p.json"
        save_profile(sample_profile(), path)
        data = json.loads(path.read_text())
        assert data["format_version"] == FORMAT_VERSION
        assert "tree" in data and "sections" in data

    def test_uncompressed_profile_roundtrip(self, tmp_path):
        profile = sample_profile(compress=False)
        path = tmp_path / "p.json"
        save_profile(profile, path)
        restored = load_profile(path)
        assert restored.compression is None
        assert restored.tree.unique_nodes() == profile.tree.unique_nodes()


class TestMachineParity:
    """Guards against the dropped-field bug: the serializer once listed
    machine fields by hand and silently lost any added after the seed
    (n_sockets, context_switch_cycles, dram_solve_cache)."""

    def test_machine_dict_covers_every_field(self):
        from dataclasses import fields

        data = profile_to_dict(sample_profile())
        assert set(data["machine"]) == {f.name for f in fields(MachineConfig)}

    def test_non_default_machine_roundtrips_exactly(self, tmp_path):
        machine = MachineConfig(
            n_cores=4,
            n_sockets=2,
            context_switch_cycles=5.0,
            dram_solve_cache=7,
        )

        def program(tr):
            with tr.section("s"):
                with tr.task():
                    tr.compute(1_000)

        profile = IntervalProfiler(machine).profile(program)
        path = tmp_path / "p.json"
        save_profile(profile, path)
        restored = load_profile(path)
        assert restored.machine == machine

    def test_old_ten_key_files_still_load(self):
        """Pre-fix profiles carried only the seed's ten machine keys; the
        missing fields must fall back to MachineConfig defaults."""
        data = profile_to_dict(sample_profile())
        legacy_keys = {
            "n_cores", "freq_ghz", "line_size", "llc_bytes", "llc_assoc",
            "base_miss_stall", "dram_peak_gbs", "dram_queue_gain",
            "timeslice_cycles", "tracer_overhead_cycles",
        }
        data["machine"] = {
            k: v for k, v in data["machine"].items() if k in legacy_keys
        }
        restored = profile_from_dict(data)
        assert restored.machine.n_cores == M.n_cores
        assert restored.machine.n_sockets == MachineConfig().n_sockets
        assert restored.machine.dram_solve_cache == MachineConfig().dram_solve_cache


class TestTraceDrivenProfiler:
    def test_trace_driven_counts_reuse(self):
        """Trace-driven profiling sees cross-segment reuse: the second sweep
        over a resident region hits, unlike per-segment analytic counting."""
        spec = MemSpec(
            AccessPattern.STREAMING,
            bytes_touched=M.llc_bytes // 4,
            working_set=M.llc_bytes // 4,
        )

        def program(tr):
            with tr.section("s"):
                with tr.task():
                    tr.compute(1_000, mem=spec)
                with tr.task():
                    tr.compute(1_000, mem=spec)

        analytic = IntervalProfiler(M, trace_driven=False).profile(program)
        traced = IntervalProfiler(M, trace_driven=True).profile(program)
        a = analytic.sections["s"].total.llc_misses
        t = traced.sections["s"].total.llc_misses
        # Analytic charges cold misses per segment; the simulated cache
        # keeps the region resident across the two tasks.
        assert t < 0.75 * a

    def test_trace_driven_matches_analytic_for_streaming_overflow(self):
        spec = MemSpec(
            AccessPattern.STREAMING, bytes_touched=4 * M.llc_bytes
        )

        def program(tr):
            with tr.section("s"):
                with tr.task():
                    tr.compute(1_000, mem=spec)

        analytic = IntervalProfiler(M, trace_driven=False).profile(program)
        traced = IntervalProfiler(M, trace_driven=True).profile(program)
        a = analytic.sections["s"].total.llc_misses
        t = traced.sections["s"].total.llc_misses
        assert t == pytest.approx(a, rel=0.1)

    def test_trace_driven_deterministic(self):
        spec = MemSpec(
            AccessPattern.RANDOM,
            bytes_touched=M.llc_bytes,
            working_set=2 * M.llc_bytes,
        )

        def program(tr):
            with tr.section("s"):
                with tr.task():
                    tr.compute(1_000, mem=spec)

        a = IntervalProfiler(M, trace_driven=True, trace_seed=5).profile(program)
        b = IntervalProfiler(M, trace_driven=True, trace_seed=5).profile(program)
        assert a.sections["s"].total.llc_misses == pytest.approx(
            b.sections["s"].total.llc_misses
        )


class TestPipelineSerialization:
    def test_pipeline_tree_roundtrips(self):
        def program(tr):
            with tr.section("pipe", pipeline=True):
                for _ in range(4):
                    with tr.task():
                        with tr.stage("a"):
                            tr.compute(1_000)
                        with tr.stage("b"):
                            tr.compute(3_000)

        profile = IntervalProfiler(M).profile(program)
        restored = tree_from_dict(tree_to_dict(profile.tree))
        sec = restored.top_level_sections()[0]
        assert sec.pipeline is True
        restored.root.validate()
        # Pipeline emulation gives identical results after the round-trip.
        from repro.core.pipeline import ff_pipeline_cycles
        from repro.runtime import RuntimeOverheads

        zero = RuntimeOverheads().scaled(0.0)
        a = ff_pipeline_cycles(profile.tree.top_level_sections()[0], 2, overheads=zero)
        b = ff_pipeline_cycles(sec, 2, overheads=zero)
        assert a == pytest.approx(b)

    def test_nowait_flag_roundtrips(self):
        def program(tr):
            with tr.section("x", barrier=False):
                with tr.task():
                    tr.compute(100)
            with tr.section("y"):
                with tr.task():
                    tr.compute(100)

        profile = IntervalProfiler(M).profile(program)
        restored = tree_from_dict(tree_to_dict(profile.tree))
        secs = restored.top_level_sections()
        assert secs[0].nowait is True
        assert secs[1].nowait is False
