"""End-to-end integration tests reproducing the paper's headline results in
miniature: Fig. 5 schedule sensitivity, Fig. 7 FF-vs-synthesizer, Fig. 2/12
memory saturation, and Fig. 11-style validation accuracy."""

import numpy as np
import pytest

from repro import ParallelProphet
from repro.baselines import SuitabilityAnalysis
from repro.core.report import error_ratio
from repro.runtime import RuntimeOverheads, Schedule
from repro.simhw import MachineConfig
from repro.workloads import get_workload, random_test1
from repro.workloads import test1_program as make_test1

M12 = MachineConfig(n_cores=12)
M2 = MachineConfig(n_cores=2, timeslice_cycles=20_000.0)


@pytest.fixture(scope="module")
def prophet12():
    p = ParallelProphet(machine=M12)
    p.calibration([2, 4, 8, 12])
    return p


class TestFig7NestedMisprediction:
    """Paper Fig. 7: two-level nested loop on a dual core.  FF predicts
    1.5x, the real machine and the synthesizer reach 2.0x."""

    @pytest.fixture(scope="class")
    def profile(self):
        unit = 1e6

        def program(tr):
            with tr.section("Loop1"):
                with tr.task("I0"):
                    with tr.section("LoopA"):
                        with tr.task():
                            tr.compute(10 * unit)
                        with tr.task():
                            tr.compute(5 * unit)
                with tr.task("I1"):
                    with tr.section("LoopB"):
                        with tr.task():
                            tr.compute(5 * unit)
                        with tr.task():
                            tr.compute(10 * unit)

        prophet = ParallelProphet(
            machine=M2, overheads=RuntimeOverheads().scaled(0.0)
        )
        return prophet, prophet.profile(program)

    def test_ff_predicts_1_5(self, profile):
        prophet, prof = profile
        report = prophet.predict(
            prof, threads=[2], methods=("ff",), memory_model=False
        )
        assert report.speedup(method="ff", n_threads=2) == pytest.approx(1.5, rel=0.02)

    def test_real_is_2_0(self, profile):
        prophet, prof = profile
        report = prophet.measure_real(prof, threads=[2])
        assert report.speedup(n_threads=2) == pytest.approx(2.0, rel=0.03)

    def test_synthesizer_fixes_it(self, profile):
        prophet, prof = profile
        report = prophet.predict(
            prof, threads=[2], methods=("syn",), memory_model=False
        )
        assert report.speedup(method="syn", n_threads=2) == pytest.approx(2.0, rel=0.03)


class TestFig2MemorySaturation:
    """Paper Fig. 2: FT-like saturation, Pred overshoots, PredM tracks."""

    def test_saturation_predicted(self, prophet12):
        wl = get_workload("npb_ft", planes=12, timesteps=1)
        prof = prophet12.profile(wl.program)
        threads = [2, 6, 12]
        real = prophet12.measure_real(prof, threads)
        pred_m = prophet12.predict(prof, threads, memory_model=True)
        pred = prophet12.predict(prof, threads, memory_model=False)

        r12 = real.speedup(n_threads=12)
        assert r12 < 6.0  # saturates well below linear
        # Memory-blind prediction overshoots by >2x.
        assert pred.speedup(method="syn", n_threads=12) > 2 * r12
        # Burden-factor prediction lands within the paper's ~30% band.
        pm12 = pred_m.speedup(method="syn", n_threads=12)
        assert error_ratio(pm12, r12) < 0.30
        # And at low thread counts everything agrees.
        assert error_ratio(
            pred_m.speedup(method="syn", n_threads=2), real.speedup(n_threads=2)
        ) < 0.10


class TestFig11Validation:
    """A miniature of the paper's 300-sample Test1 validation: FF and SYN
    predictions vs real replays across schedules; average error must be
    small (the paper reports <4% average for Test1 with the FF)."""

    @pytest.mark.parametrize("schedule", ["static", "static,1", "dynamic,1"])
    def test_test1_accuracy(self, schedule):
        prophet = ParallelProphet(machine=MachineConfig(n_cores=8))
        rng = np.random.default_rng(1234)
        errors_ff, errors_syn = [], []
        for _ in range(6):
            params = random_test1(rng, scale=0.5)
            prof = prophet.profile(make_test1(params))
            real = prophet.measure_real(prof, [8], schedule=schedule)
            pred = prophet.predict(
                prof,
                threads=[8],
                schedules=[schedule],
                methods=("ff", "syn"),
                memory_model=False,
            )
            r = real.speedup(n_threads=8)
            errors_ff.append(error_ratio(pred.speedup(method="ff", n_threads=8), r))
            errors_syn.append(error_ratio(pred.speedup(method="syn", n_threads=8), r))
        assert float(np.mean(errors_ff)) < 0.10
        assert float(np.mean(errors_syn)) < 0.05
        assert max(errors_syn) < 0.20


class TestTableICapabilities:
    """Spot checks of the Table I capability matrix."""

    def test_prophet_handles_recursion_suitability_does_not(self, prophet12):
        # Depth-5 recursion (4096 points, 256 base) exceeds what the
        # Suitability-like tool can emulate.
        wl = get_workload("ompscr_fft", n_points=4096)
        prof = prophet12.profile(wl.program)
        suit = SuitabilityAnalysis()
        assert not suit.supports(prof)
        report = prophet12.predict(
            prof, threads=[4], paradigm="cilk", memory_model=False
        )
        assert report.speedup(method="syn", n_threads=4) > 1.5

    def test_prophet_schedule_awareness(self, prophet12):
        """Suitability emulates ~dynamic,1 only; Prophet distinguishes
        schedules on imbalanced loops."""

        def program(tr):
            with tr.section("ramp"):
                for i in range(24):
                    with tr.task():
                        tr.compute((i + 1) * 40_000)

        prof = prophet12.profile(program)
        report = prophet12.predict(
            prof,
            threads=[8],
            schedules=["static", "dynamic,1"],
            memory_model=False,
        )
        s_static = report.speedup(method="syn", schedule="static", n_threads=8)
        s_dyn = report.speedup(method="syn", schedule="dynamic,1", n_threads=8)
        assert s_dyn > s_static * 1.2


class TestWholeWorkloadSweep:
    """Every benchmark runs through the full pipeline at a small scale and
    the synthesizer prediction lands near the real replay (the Fig. 12
    property, cheap version)."""

    SCALES = {
        "ompscr_md": dict(particles=96, steps=1),
        "ompscr_lu": dict(size=48),
        "ompscr_fft": dict(n_points=2048),
        "ompscr_qsort": dict(elements=80_000),
        "npb_ep": dict(batches=48),
        "npb_ft": dict(planes=12, timesteps=1),
        "npb_mg": dict(fine_planes=12, cycles_count=1),
        "npb_cg": dict(outer_steps=1, inner_iterations=3, row_blocks=16),
    }

    @pytest.mark.parametrize("name", sorted(SCALES))
    def test_predm_tracks_real(self, name, prophet12):
        wl = get_workload(name, **self.SCALES[name])
        prof = prophet12.profile(wl.program)
        real = prophet12.measure_real(
            prof, [8], paradigm=wl.paradigm, schedule=wl.schedule
        )
        pred = prophet12.predict(
            prof,
            threads=[8],
            paradigm=wl.paradigm,
            schedules=[wl.schedule],
            methods=("syn",),
            memory_model=True,
        )
        r = real.speedup(n_threads=8)
        p = pred.speedup(method="syn", n_threads=8)
        assert error_ratio(p, r) < 0.30
