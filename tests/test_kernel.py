"""Tests for the discrete-event OS kernel: threads, sync primitives,
preemptive scheduling, fluid-rate compute, and failure modes."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simhw import MachineConfig
from repro.simos import (
    Acquire,
    BarrierWait,
    Compute,
    EventClear,
    EventSet,
    EventWait,
    GetCurrentThread,
    GetTime,
    Join,
    Release,
    SimBarrier,
    SimEvent,
    SimKernel,
    SimMutex,
    Spawn,
    ThreadState,
    YieldCpu,
)


def run_master(machine, gen_fn):
    kernel = SimKernel(machine)
    root = kernel.spawn(gen_fn(), name="master")
    end = kernel.run()
    return kernel, root, end


class TestBasicExecution:
    def test_single_compute(self, machine2):
        def main():
            yield Compute(cycles=1000)

        _, _, end = run_master(machine2, main)
        assert end == pytest.approx(1000.0)

    def test_sequential_computes_add(self, machine2):
        def main():
            yield Compute(cycles=300)
            yield Compute(cycles=700)

        _, _, end = run_master(machine2, main)
        assert end == pytest.approx(1000.0)

    def test_zero_compute_free(self, machine2):
        def main():
            for _ in range(10):
                yield Compute(cycles=0, instructions=5)

        kernel, _, end = run_master(machine2, main)
        assert end == 0.0
        assert kernel.counters.instructions == 50

    def test_return_value(self, machine2):
        def main():
            yield Compute(cycles=10)
            return 42

        _, root, _ = run_master(machine2, main)
        assert root.result == 42
        assert root.state is ThreadState.FINISHED

    def test_get_time(self, machine2):
        times = []

        def main():
            times.append((yield GetTime()))
            yield Compute(cycles=500)
            times.append((yield GetTime()))

        run_master(machine2, main)
        assert times == [0.0, 500.0]

    def test_get_current_thread(self, machine2):
        seen = []

        def main():
            me = yield GetCurrentThread()
            seen.append(me)

        _, root, _ = run_master(machine2, main)
        assert seen == [root]


class TestSpawnJoin:
    def test_parallel_computes_overlap(self, machine2):
        def child():
            yield Compute(cycles=1000)

        def main():
            a = yield Spawn(child())
            b = yield Spawn(child())
            yield Join(a)
            yield Join(b)

        # Master occupies one core only while spawning; children overlap on
        # the two cores.
        _, _, end = run_master(machine2, main)
        assert end == pytest.approx(1000.0)

    def test_join_returns_child_result(self, machine2):
        def child():
            yield Compute(cycles=10)
            return "done"

        def main():
            t = yield Spawn(child())
            result = yield Join(t)
            assert result == "done"

        run_master(machine2, main)

    def test_join_already_finished(self, machine2):
        def child():
            yield Compute(cycles=10)
            return 7

        def main():
            t = yield Spawn(child())
            yield Compute(cycles=1000)  # child certainly finished
            result = yield Join(t)
            assert result == 7

        run_master(machine2, main)

    def test_many_joiners(self, machine2):
        def slow():
            yield Compute(cycles=5000)
            return "x"

        results = []

        def waiter(target):
            def gen():
                results.append((yield Join(target)))

            return gen

        kernel = SimKernel(machine2)

        def main():
            t = yield Spawn(slow())
            for _ in range(3):
                yield Spawn(waiter(t)())

        kernel.spawn(main())
        kernel.run()
        assert results == ["x", "x", "x"]


class TestMutex:
    def test_critical_sections_serialize(self, machine4):
        mutex = SimMutex()

        def worker():
            yield Acquire(mutex)
            yield Compute(cycles=1000)
            yield Release(mutex)

        def main():
            ts = []
            for _ in range(4):
                ts.append((yield Spawn(worker())))
            for t in ts:
                yield Join(t)

        _, _, end = run_master(machine4, main)
        assert end == pytest.approx(4000.0)

    def test_contention_stats(self, machine4):
        mutex = SimMutex()

        def worker():
            yield Acquire(mutex)
            yield Compute(cycles=100)
            yield Release(mutex)

        def main():
            ts = []
            for _ in range(3):
                ts.append((yield Spawn(worker())))
            for t in ts:
                yield Join(t)

        kernel = SimKernel(machine4)
        kernel.spawn(main())
        kernel.run()
        assert mutex.acquires == 3
        assert mutex.contended_acquires == 2

    def test_release_not_owner_raises(self, machine2):
        mutex = SimMutex()

        def main():
            yield Release(mutex)

        with pytest.raises(SimulationError):
            run_master(machine2, main)

    def test_recursive_acquire_raises(self, machine2):
        mutex = SimMutex()

        def main():
            yield Acquire(mutex)
            yield Acquire(mutex)

        with pytest.raises(SimulationError):
            run_master(machine2, main)

    def test_fifo_handoff_order(self, machine4):
        mutex = SimMutex()
        order = []

        def worker(tag, delay):
            def gen():
                yield Compute(cycles=delay)
                yield Acquire(mutex)
                order.append(tag)
                yield Compute(cycles=1000)
                yield Release(mutex)

            return gen

        def main():
            ts = []
            for tag, delay in (("a", 0), ("b", 10), ("c", 20)):
                ts.append((yield Spawn(worker(tag, delay)())))
            for t in ts:
                yield Join(t)

        run_master(machine4, main)
        assert order == ["a", "b", "c"]


class TestBarrier:
    def test_barrier_releases_all(self, machine4):
        barrier = SimBarrier(3)
        after = []

        def worker(delay):
            def gen():
                yield Compute(cycles=delay)
                yield BarrierWait(barrier)
                after.append((yield GetTime()))

            return gen

        def main():
            ts = []
            for delay in (100, 500, 900):
                ts.append((yield Spawn(worker(delay)())))
            for t in ts:
                yield Join(t)

        run_master(machine4, main)
        # Everyone leaves at the last arrival time.
        assert all(t == pytest.approx(900.0) for t in after)
        assert barrier.generations == 1

    def test_barrier_reusable(self, machine4):
        barrier = SimBarrier(2)

        def worker():
            for _ in range(3):
                yield Compute(cycles=100)
                yield BarrierWait(barrier)

        def main():
            a = yield Spawn(worker())
            b = yield Spawn(worker())
            yield Join(a)
            yield Join(b)

        run_master(machine4, main)
        assert barrier.generations == 3


class TestEvents:
    def test_wait_already_set(self, machine2):
        event = SimEvent()
        event.is_set = True

        def main():
            yield EventWait(event)

        _, _, end = run_master(machine2, main)
        assert end == 0.0

    def test_set_wakes_waiter(self, machine2):
        event = SimEvent()
        woke = []

        def waiter():
            yield EventWait(event)
            woke.append((yield GetTime()))

        def main():
            yield Spawn(waiter())
            yield Compute(cycles=777)
            yield EventSet(event)

        run_master(machine2, main)
        assert woke == [pytest.approx(777.0)]

    def test_wake_one(self, machine4):
        event = SimEvent()
        woke = []

        def waiter(tag):
            def gen():
                yield EventWait(event)
                woke.append(tag)

            return gen

        def main():
            a = yield Spawn(waiter("a")())
            b = yield Spawn(waiter("b")())
            yield Compute(cycles=100)
            yield EventSet(event, wake="one")
            yield EventClear(event)
            # b still blocked; release it so the kernel can terminate.
            yield Compute(cycles=100)
            yield EventSet(event, wake="all")
            yield Join(a)
            yield Join(b)

        run_master(machine4, main)
        assert woke[0] == "a"
        assert sorted(woke) == ["a", "b"]


class TestPreemption:
    def test_oversubscription_fair_share(self):
        machine = MachineConfig(n_cores=2, timeslice_cycles=1000.0)

        def spin():
            yield Compute(cycles=100_000)

        def main():
            ts = []
            for _ in range(4):
                ts.append((yield Spawn(spin())))
            for t in ts:
                yield Join(t)

        kernel = SimKernel(machine)
        kernel.spawn(main())
        end = kernel.run()
        # 4 threads x 100k cycles on 2 cores with fair time sharing.
        assert end == pytest.approx(200_000.0, rel=0.02)
        assert kernel.preemptions > 0

    def test_no_preemption_without_waiters(self, machine2):
        def spin():
            yield Compute(cycles=100_000)

        def main():
            t = yield Spawn(spin())
            yield Join(t)

        kernel = SimKernel(machine2)
        kernel.spawn(main())
        kernel.run()
        assert kernel.preemptions == 0

    def test_work_conserved_under_preemption(self):
        machine = MachineConfig(n_cores=2, timeslice_cycles=500.0)

        def spin(n):
            yield Compute(cycles=n, instructions=n)

        def main():
            ts = []
            for n in (30_000, 50_000, 70_000, 90_000):
                ts.append((yield Spawn(spin(n))))
            for t in ts:
                yield Join(t)

        kernel = SimKernel(machine)
        kernel.spawn(main())
        kernel.run()
        assert kernel.counters.instructions == pytest.approx(240_000.0)


class TestDeadlock:
    def test_deadlock_detected(self, machine2):
        event = SimEvent()  # never set

        def main():
            yield EventWait(event)

        with pytest.raises(DeadlockError):
            run_master(machine2, main)

    def test_lock_deadlock_detected(self, machine2):
        a, b = SimMutex("a"), SimMutex("b")

        def w1():
            yield Acquire(a)
            yield Compute(cycles=100)
            yield Acquire(b)

        def w2():
            yield Acquire(b)
            yield Compute(cycles=100)
            yield Acquire(a)

        def main():
            t1 = yield Spawn(w1())
            t2 = yield Spawn(w2())
            yield Join(t1)
            yield Join(t2)

        with pytest.raises(DeadlockError):
            run_master(machine2, main)


class TestMemoryContention:
    def test_streaming_threads_saturate(self, machine4):
        cfg = machine4

        def stream():
            # Fully memory-bound: base = misses * omega0.
            yield Compute(
                cycles=1e6 * cfg.base_miss_stall,
                instructions=1e6,
                llc_misses=1e6,
            )

        def run_n(n):
            kernel = SimKernel(cfg)

            def main():
                ts = []
                for _ in range(n):
                    ts.append((yield Spawn(stream())))
                for t in ts:
                    yield Join(t)

            kernel.spawn(main())
            return kernel.run()

        t1, t2, t4 = run_n(1), run_n(2), run_n(4)
        # Per-thread demand is half the peak (line*freq/omega0 = 6 GB/s on
        # the default config), so 4 threads demand 2x the peak: the stall
        # multiplier solves to exactly 2 and the run takes 2x the base time.
        base = 1e6 * cfg.base_miss_stall
        demand = 1e6 * cfg.line_size / cfg.cycles_to_seconds(base)
        expected_t4 = (4 * demand / cfg.dram_peak_bytes_per_sec) * base
        assert t2 > t1
        assert t4 == pytest.approx(expected_t4, rel=1e-6)
        assert t4 > 1.5 * t2

    def test_compute_threads_unaffected(self, machine4):
        def spin():
            yield Compute(cycles=100_000)

        def run_n(n):
            kernel = SimKernel(machine4)

            def main():
                ts = []
                for _ in range(n):
                    ts.append((yield Spawn(spin())))
                for t in ts:
                    yield Join(t)

            kernel.spawn(main())
            return kernel.run()

        assert run_n(4) == pytest.approx(run_n(1), rel=1e-9)


class TestDeterminism:
    def test_identical_runs(self):
        machine = MachineConfig(n_cores=3, timeslice_cycles=700.0)

        def build():
            mutex = SimMutex()

            def worker(n):
                def gen():
                    yield Compute(cycles=1000 * n)
                    yield Acquire(mutex)
                    yield Compute(cycles=50)
                    yield Release(mutex)
                    yield YieldCpu()
                    yield Compute(cycles=500)

                return gen

            def main():
                ts = []
                for n in range(1, 8):
                    ts.append((yield Spawn(worker(n)())))
                for t in ts:
                    yield Join(t)

            kernel = SimKernel(machine)
            kernel.spawn(main())
            return kernel.run()

        assert build() == build()


class TestYield:
    def test_yield_allows_other_thread(self, machine2):
        machine = MachineConfig(n_cores=1)
        order = []

        def a():
            order.append("a1")
            yield YieldCpu()
            order.append("a2")
            yield Compute(cycles=1)

        def b():
            order.append("b")
            yield Compute(cycles=1)

        def main():
            ta = yield Spawn(a())
            tb = yield Spawn(b())
            yield Join(ta)
            yield Join(tb)

        run_master(machine, main)
        assert order == ["a1", "b", "a2"]


class TestAffinity:
    def test_pinned_threads_share_one_core(self):
        machine = MachineConfig(n_cores=4, timeslice_cycles=1_000.0)
        kernel = SimKernel(machine)

        def spin():
            yield Compute(cycles=50_000)

        def main():
            ts = []
            for _ in range(2):
                t = yield Spawn(spin(), affinity=frozenset({0}))
                ts.append(t)
            for t in ts:
                yield Join(t)

        kernel.spawn(main())
        end = kernel.run()
        # Both pinned to core 0: serialized (time-shared), ~100k total.
        assert end == pytest.approx(100_000.0, rel=0.02)

    def test_unpinned_threads_use_all_cores(self):
        machine = MachineConfig(n_cores=4)
        kernel = SimKernel(machine)

        def spin():
            yield Compute(cycles=50_000)

        def main():
            ts = []
            for _ in range(2):
                ts.append((yield Spawn(spin())))
            for t in ts:
                yield Join(t)

        kernel.spawn(main())
        assert kernel.run() == pytest.approx(50_000.0, rel=0.02)

    def test_affinity_does_not_block_other_cores(self):
        machine = MachineConfig(n_cores=2)
        kernel = SimKernel(machine)
        order = []

        def pinned():
            yield Compute(cycles=80_000)
            order.append("pinned")

        def free():
            yield Compute(cycles=1_000)
            order.append("free")

        def main():
            a = yield Spawn(pinned(), affinity=frozenset({1}))
            b = yield Spawn(free())
            yield Join(a)
            yield Join(b)

        kernel.spawn(main())
        kernel.run()
        assert order == ["free", "pinned"]
