"""Schedule-space exploration: handoff policies, envelopes, reproducibility.

Covers the lock-interleaving exploration stack bottom-up: the mutex's
pluggable waiter selection, the kernel's policy plumbing, per-run counter
hygiene, the Explorer's envelopes (FIFO always inside, byte-reproducible
across the worker pool), and the differential harness's envelope-based
classification of lock-bearing programs.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.executor import ParallelExecutor, ReplayMode
from repro.core.profiler import IntervalProfiler
from repro.core.prophet import ParallelProphet
from repro.core.report import SpeedupEnvelope, SpeedupReport
from repro.errors import ConfigurationError
from repro.explore import Explorer, ScheduleVariant, default_variants, verify_envelope
from repro.runtime import RuntimeOverheads, Schedule
from repro.simhw import MachineConfig
from repro.simos import (
    Acquire,
    Compute,
    HANDOFF_POLICIES,
    Join,
    Release,
    SimKernel,
    SimMutex,
    SimThread,
    Spawn,
    normalize_handoff,
)
from repro.validate import (
    ENVELOPE_SLACK,
    DifferentialHarness,
    GridPoint,
    TolerancePolicy,
    build_program,
    description_has_locks,
    generate_locky_program,
)

M4 = MachineConfig(n_cores=4)
ZERO_OH = RuntimeOverheads().scaled(0.0)


def _stub_thread(tid: int, work: float) -> SimThread:
    t = SimThread(tid, iter(()))
    t.work_done = work
    return t


class TestHandoffSelection:
    """SimMutex.pop_waiter picks per policy; normalize_handoff canonicalises."""

    def _mutex_with(self, works):
        mutex = SimMutex()
        for tid, w in enumerate(works):
            mutex.waiters.append(_stub_thread(tid, w))
        return mutex

    def test_fifo_pops_arrival_order(self):
        mutex = self._mutex_with([5.0, 1.0, 3.0])
        order = [mutex.pop_waiter("fifo").tid for _ in range(3)]
        assert order == [0, 1, 2]

    def test_lifo_pops_reverse_arrival_order(self):
        mutex = self._mutex_with([5.0, 1.0, 3.0])
        order = [mutex.pop_waiter("lifo").tid for _ in range(3)]
        assert order == [2, 1, 0]

    def test_adversarial_pops_least_progress_first(self):
        # work_done is the progress proxy: least done ≈ longest remaining.
        mutex = self._mutex_with([5.0, 1.0, 3.0])
        order = [mutex.pop_waiter("adversarial").tid for _ in range(3)]
        assert order == [1, 2, 0]

    def test_adversarial_ties_break_by_arrival(self):
        mutex = self._mutex_with([2.0, 2.0, 2.0])
        order = [mutex.pop_waiter("adversarial").tid for _ in range(3)]
        assert order == [0, 1, 2]

    def test_random_is_seed_deterministic(self):
        orders = []
        for _ in range(2):
            mutex = self._mutex_with([0.0] * 6)
            rng = random.Random(42)
            orders.append(
                [mutex.pop_waiter("random", rng).tid for _ in range(6)]
            )
        assert orders[0] == orders[1]
        assert sorted(orders[0]) == list(range(6))

    def test_normalize_accepts_alias_and_rejects_unknown(self):
        assert normalize_handoff("seeded-random") == "random"
        for p in HANDOFF_POLICIES:
            assert normalize_handoff(p) == p
        with pytest.raises(ConfigurationError):
            normalize_handoff("telepathic")


def _contended_end_time(machine, handoff, seed=0, pres=(300.0, 600.0, 900.0)):
    """End time + acquisition order of 3 waiters contending for one mutex."""
    mutex = SimMutex()
    order: list[str] = []

    def waiter(name, pre):
        yield Compute(cycles=pre)
        yield Acquire(mutex)
        order.append(name)
        yield Compute(cycles=2_000.0)
        yield Release(mutex)

    def main():
        yield Acquire(mutex)
        kids = []
        for name, pre in zip("abc", pres):
            kids.append((yield Spawn(waiter(name, pre))))
        # Hold long enough for every waiter to enqueue (arrival order a,b,c).
        yield Compute(cycles=5_000.0)
        yield Release(mutex)
        for kid in kids:
            yield Join(kid)

    kernel = SimKernel(machine, handoff=handoff, handoff_seed=seed)
    kernel.spawn(main())
    end = kernel.run()
    return end, order, kernel


class TestKernelHandoff:
    def test_fifo_is_default_and_hands_off_in_arrival_order(self, machine4):
        end_default, order_default, _ = _contended_end_time(machine4, "fifo")
        kernel = SimKernel(machine4)
        assert kernel.handoff == "fifo"
        assert order_default == ["a", "b", "c"]

    def test_lifo_reverses_waiter_order(self, machine4):
        _, order, _ = _contended_end_time(machine4, "lifo")
        assert order == ["c", "b", "a"]

    def test_random_same_seed_reproduces(self, machine4):
        end1, order1, _ = _contended_end_time(machine4, "random", seed=7)
        end2, order2, _ = _contended_end_time(machine4, "random", seed=7)
        assert (end1, order1) == (end2, order2)

    def test_adversarial_tracks_progress_and_prefers_it(self, machine4):
        # Arrival order a,b,c; work done at enqueue 300/600/900 → the
        # least-progress pick is again "a", with progress tracked.
        _, order, kernel = _contended_end_time(machine4, "adversarial")
        assert order == ["a", "b", "c"]

    def test_progress_tracking_only_under_adversarial(self, machine4):
        mutex = SimMutex()

        def main():
            yield Acquire(mutex)
            yield Compute(cycles=1_000.0)
            yield Release(mutex)

        for policy, expect_tracked in (("fifo", False), ("adversarial", True)):
            kernel = SimKernel(machine4, handoff=policy)
            root = kernel.spawn(main())
            kernel.run()
            assert (root.work_done > 0) == expect_tracked


class TestCounterHygiene:
    """Satellite: per-run lock counters must not leak between replays."""

    def test_two_seeded_replays_report_identical_contention(self):
        rng = random.Random(11)
        profile = IntervalProfiler(M4).profile(
            build_program(generate_locky_program(rng))
        )
        stats = []
        for _ in range(2):
            ex = ParallelExecutor(
                M4,
                schedule=Schedule.static_chunk(1),
                overheads=ZERO_OH,
                handoff="random",
                handoff_seed=3,
                memoize=False,
            )
            result = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
            stats.append((result.lock_acquires, result.lock_contended))
        assert stats[0] == stats[1]
        assert stats[0][0] > 0  # the corpus program really takes locks

    def test_kernel_counter_matches_mutex_counters(self, machine4):
        _, _, kernel = _contended_end_time(machine4, "fifo")
        assert kernel.lock_acquires == 4  # master + 3 waiters
        assert kernel.lock_contended == 3

    def test_mutex_reset_counters(self):
        mutex = SimMutex()
        mutex.acquires = 5
        mutex.contended_acquires = 3
        mutex.reset_counters()
        assert mutex.acquires == 0
        assert mutex.contended_acquires == 0


class TestVariants:
    def test_default_variants_lead_with_fifo(self):
        variants = default_variants(samples=6, seed=9)
        assert variants[0] == ScheduleVariant("fifo")
        assert [v.handoff for v in variants[:3]] == ["fifo", "lifo", "adversarial"]
        assert [v.seed for v in variants[3:]] == [9, 10, 11]

    def test_variant_labels_round_trip(self):
        for v in default_variants(samples=8, seed=2):
            assert ScheduleVariant.parse(v.label) == v

    def test_explorer_prepends_missing_fifo(self):
        explorer = Explorer(variants=[ScheduleVariant("lifo")])
        assert explorer.variants[0].handoff == "fifo"

    def test_samples_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            default_variants(samples=0)


@st.composite
def locky_programs(draw):
    """Seeded lock-bearing program descriptions (no memory, big leaves)."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return generate_locky_program(random.Random(seed))


class TestExplorer:
    def _prophet(self):
        return ParallelProphet(machine=M4, overheads=ZERO_OH)

    def _locky_profile(self, seed=23):
        items = generate_locky_program(random.Random(seed))
        return IntervalProfiler(M4).profile(build_program(items))

    def test_report_carries_fifo_estimates_and_envelopes(self):
        prophet = self._prophet()
        profile = self._locky_profile()
        report = prophet.explore(profile, threads=[2, 4], memory_model=False)
        assert len(report.estimates) == 2  # one fifo point per thread count
        assert len(report.envelopes) == 2
        for t in (2, 4):
            env = report.envelope(n_threads=t)
            fifo = report.speedup(method="syn", n_threads=t)
            assert dict(env.samples)["fifo"] == fifo
            assert env.lo <= fifo <= env.hi
            assert env.n_samples == 6

    def test_fifo_estimate_byte_identical_to_plain_predict(self):
        prophet = self._prophet()
        profile = self._locky_profile()
        plain = prophet.predict(
            profile, threads=[4], methods=("syn",), memory_model=False,
            backend="eager",
        )
        explored = prophet.explore(profile, threads=[4], memory_model=False)
        assert explored.speedup(method="syn", n_threads=4) == plain.speedup(
            method="syn", n_threads=4
        )

    def test_pool_fanout_is_bit_reproducible(self):
        profile = self._locky_profile(seed=31)
        reports = []
        for jobs in (1, 2):
            prophet = self._prophet()
            report = Explorer(prophet, samples=5, seed=4, jobs=jobs).explore(
                {"w": profile}, threads=[4], memory_model=False
            )["w"]
            reports.append(report.envelope(n_threads=4))
        assert reports[0] == reports[1]

    def test_real_envelope_method(self):
        prophet = self._prophet()
        profile = self._locky_profile(seed=5)
        report = Explorer(prophet, samples=4).explore(
            {"w": profile}, threads=[4], method="real", memory_model=False
        )["w"]
        env = report.envelope(n_threads=4)
        assert env.method == "real"
        assert env.lo <= env.hi

    def test_ff_method_rejected(self):
        with pytest.raises(ConfigurationError):
            Explorer(self._prophet()).explore(
                {"w": self._locky_profile()}, threads=[2], method="ff"
            )

    def test_exploration_does_not_poison_fifo_memo(self):
        prophet = self._prophet()
        profile = self._locky_profile(seed=13)
        before = prophet.predict(
            profile, threads=[4], methods=("syn",), memory_model=False
        ).speedup(method="syn", n_threads=4)
        prophet.explore(profile, threads=[4], memory_model=False)
        after = prophet.predict(
            profile, threads=[4], methods=("syn",), memory_model=False
        ).speedup(method="syn", n_threads=4)
        assert before == after

    def test_verify_envelope_extremes_reproduce_uncached(self):
        prophet = self._prophet()
        profile = self._locky_profile(seed=3)
        checked, mismatches = verify_envelope(
            prophet, profile, n_threads=4, memory_model=False
        )
        assert checked == 2
        assert mismatches == 0

    @given(locky_programs())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_fifo_prediction_always_inside_envelope(self, items):
        profile = IntervalProfiler(M4).profile(build_program(items))
        prophet = ParallelProphet(machine=M4, overheads=ZERO_OH)
        report = prophet.explore(profile, threads=[3], memory_model=False)
        env = report.envelope(n_threads=3)
        fifo = report.speedup(method="syn", n_threads=3)
        assert env.lo <= fifo <= env.hi


class TestEnvelopeReport:
    def _env(self):
        return SpeedupEnvelope.from_samples(
            "syn", "omp", "static", 4,
            [("fifo", 2.0), ("lifo", 1.5), ("adversarial", 2.5)],
        )

    def test_from_samples_stats(self):
        env = self._env()
        assert (env.lo, env.median, env.hi) == (1.5, 2.0, 2.5)
        assert env.lo_variant == "lifo"
        assert env.hi_variant == "adversarial"
        assert env.width == pytest.approx(0.5)

    def test_contains_with_slack(self):
        env = self._env()
        assert env.contains(2.0)
        assert not env.contains(1.4)
        assert env.contains(1.45, slack=0.05)
        assert not env.contains(2.7, slack=0.05)

    def test_rendering_includes_envelope_rows(self):
        report = SpeedupReport()
        report.add_envelope(self._env())
        assert "envelope" in report.to_table()
        assert "[1.50, 2.50]" in report.to_markdown()


class TestDifferentialEnvelope:
    def test_real_outside_envelope_is_violation(self):
        harness = DifferentialHarness.__new__(DifferentialHarness)
        harness.policy = TolerancePolicy()
        env = SpeedupEnvelope.from_samples(
            "syn", "omp", "static", 4, [("fifo", 2.0), ("lifo", 1.8)]
        )
        point = GridPoint("w", "omp", "static", 4)
        bad = harness._classify(
            point,
            {"ff": None, "syn": 2.0, "real": 3.0},
            nested=False,
            locky=True,
            envelope=env,
        )
        assert (bad.status, bad.kind) == ("violation", "syn_envelope_miss")
        assert bad.envelope is env
        good = harness._classify(
            point,
            {"ff": None, "syn": 2.0, "real": 1.9},
            nested=False,
            locky=True,
            envelope=env,
        )
        assert good.status == "ok"
        assert good.envelope is env

    def test_envelope_slack_defaults_to_shared_policy(self):
        assert TolerancePolicy().envelope_slack == ENVELOPE_SLACK

    def test_generate_locky_program_always_has_locks(self):
        rng = random.Random(0)
        for _ in range(10):
            assert description_has_locks(generate_locky_program(rng))


class TestEnvelopeAcceptance:
    """The issue's acceptance bar: a ≥20-program lock-heavy corpus where
    every REAL speedup lies inside the reported [min, max] envelope."""

    def test_lock_heavy_corpus_real_always_inside_envelope(self):
        from repro.validate import run_fuzz

        report = run_fuzz(n_programs=20, seed=2026, locky_only=True)
        # Every grid point of a lock-bearing program is judged against an
        # explored envelope (the flat syn_vs_real band is replaced)...
        assert len(report.records) == 40
        assert all(r.envelope is not None for r in report.records)
        # ...and REAL never escapes it.
        misses = [r for r in report.violations if r.kind == "syn_envelope_miss"]
        assert misses == []
        assert report.violations == []
