"""Smoke tests: every example script runs to completion.

Examples are a deliverable; they must not rot.  Each is executed in-process
(import + main()) with stdout captured; the slowest ones are checked for
their headline output strings.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "predicted" in out and "real" in out
        assert "error" in out

    def test_annotation_assist(self, capsys):
        out = run_example("annotation_assist", capsys)
        assert "doall" in out
        assert "reduction" in out
        assert "serial" in out
        assert "overall" in out

    def test_pipeline_parallelism(self, capsys):
        out = run_example("pipeline_parallelism", capsys)
        assert "plateaus" in out
        assert "2.80x" in out  # the theoretical ceiling is printed

    def test_memory_bound(self, capsys):
        out = run_example("memory_bound", capsys)
        assert "burden factors" in out
        assert "Fig. 2 reproduced" in out

    def test_custom_workload(self, capsys):
        out = run_example("custom_workload", capsys)
        assert "verdict" in out

    def test_lu_reduction(self, capsys):
        out = run_example("lu_reduction", capsys)
        assert "suitability" in out

    def test_recursive_fft(self, capsys):
        out = run_example("recursive_fft", capsys)
        assert "no meaningful prediction" in out

    @pytest.mark.slow
    def test_machine_whatif(self, capsys):
        out = run_example("machine_whatif", capsys)
        assert "useful-core count" in out

    @pytest.mark.slow
    def test_input_sensitivity(self, capsys):
        out = run_example("input_sensitivity", capsys)
        assert "drift" in out
