"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.simhw import MachineConfig


@pytest.fixture
def machine2() -> MachineConfig:
    """A 2-core machine with a short timeslice (preemption visible fast)."""
    return MachineConfig(n_cores=2, timeslice_cycles=10_000.0)


@pytest.fixture
def machine4() -> MachineConfig:
    return MachineConfig(n_cores=4)


@pytest.fixture
def machine12() -> MachineConfig:
    return MachineConfig(n_cores=12)


@pytest.fixture
def tiny_llc_machine() -> MachineConfig:
    """A machine with a small LLC so working sets overflow it in tests."""
    return MachineConfig(n_cores=4, llc_bytes=1 << 20)
