"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.simhw import MachineConfig


@pytest.fixture(autouse=True, scope="session")
def _tracer_mode():
    """Honour ``REPRO_TRACE=1``: run the whole suite with the global tracer
    enabled, so every instrumentation hook executes live during tier-1 tests
    (the results must be identical either way — tracing is observe-only)."""
    if os.environ.get("REPRO_TRACE", "") not in ("", "0"):
        from repro.obs import get_tracer

        get_tracer().enabled = True
    yield


@pytest.fixture
def machine2() -> MachineConfig:
    """A 2-core machine with a short timeslice (preemption visible fast)."""
    return MachineConfig(n_cores=2, timeslice_cycles=10_000.0)


@pytest.fixture
def machine4() -> MachineConfig:
    return MachineConfig(n_cores=4)


@pytest.fixture
def machine12() -> MachineConfig:
    return MachineConfig(n_cores=12)


@pytest.fixture
def tiny_llc_machine() -> MachineConfig:
    """A machine with a small LLC so working sets overflow it in tests."""
    return MachineConfig(n_cores=4, llc_bytes=1 << 20)
