"""Tests for tree replay: REAL ground truth and FAKE synthesizer modes."""

import pytest

from repro.core.executor import (
    OVERHEAD_ACCESS_NODE,
    ParallelExecutor,
    ReplayMode,
)
from repro.core.profiler import IntervalProfiler
from repro.core.tree import Node, NodeKind
from repro.errors import EmulationError
from repro.runtime import RuntimeOverheads, Schedule
from repro.simhw import MachineConfig
from repro.simhw.memtrace import AccessPattern, MemSpec

M = MachineConfig(n_cores=4)
M12 = MachineConfig(n_cores=12)
ZERO_OH = RuntimeOverheads().scaled(0.0)


def profile_of(program, machine=M):
    return IntervalProfiler(machine).profile(program)


def balanced(n=8, cost=50_000):
    def program(tr):
        with tr.section("loop"):
            for _ in range(n):
                with tr.task():
                    tr.compute(cost)

    return profile_of(program)


class TestRealReplay:
    def test_single_thread_matches_serial(self):
        profile = balanced()
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        result = ex.execute_profile(profile.tree, 1, ReplayMode.REAL)
        assert result.speedup == pytest.approx(1.0, rel=0.01)

    def test_balanced_scales(self):
        profile = balanced(8, 50_000)
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        result = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        assert result.speedup == pytest.approx(4.0, rel=0.02)

    def test_speedup_bounded_by_threads(self):
        profile = balanced(16, 20_000)
        ex = ParallelExecutor(M)
        for t in (2, 4):
            r = ex.execute_profile(profile.tree, t, ReplayMode.REAL)
            assert r.speedup <= t

    def test_memory_bound_saturates(self):
        def program(tr):
            spec = MemSpec(AccessPattern.STREAMING, bytes_touched=20_000_000)
            with tr.section("stream"):
                for _ in range(12):
                    with tr.task():
                        tr.compute(1_000_000, mem=spec)

        profile = profile_of(program, M12)
        ex = ParallelExecutor(M12, overheads=ZERO_OH)
        s4 = ex.execute_profile(profile.tree, 4, ReplayMode.REAL).speedup
        s12 = ex.execute_profile(profile.tree, 12, ReplayMode.REAL).speedup
        # Heavily memory-bound: 12 threads barely beat 4.
        assert s12 < s4 * 1.5
        assert s12 < 4.0

    def test_lock_contention_is_real(self):
        def program(tr):
            with tr.section("locks"):
                for _ in range(4):
                    with tr.task():
                        with tr.lock(1):
                            tr.compute(50_000)

        profile = profile_of(program)
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        r = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        assert r.speedup == pytest.approx(1.0, rel=0.05)

    def test_serial_nodes_added(self):
        def program(tr):
            tr.compute(100_000)
            with tr.section("s"):
                for _ in range(4):
                    with tr.task():
                        tr.compute(25_000)

        profile = profile_of(program)
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        r = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        # Amdahl: 200k serial time, parallel = 100k + 25k.
        assert r.total_cycles == pytest.approx(125_000.0, rel=0.02)

    def test_nested_oversubscription_fair(self):
        """Fig. 7 ground truth: 2.0x on a dual-core."""
        machine = MachineConfig(n_cores=2, timeslice_cycles=20_000.0)
        unit = 1e6

        def program(tr):
            with tr.section("Loop1"):
                with tr.task():
                    with tr.section("A"):
                        with tr.task():
                            tr.compute(10 * unit)
                        with tr.task():
                            tr.compute(5 * unit)
                with tr.task():
                    with tr.section("B"):
                        with tr.task():
                            tr.compute(5 * unit)
                        with tr.task():
                            tr.compute(10 * unit)

        profile = profile_of(program, machine)
        ex = ParallelExecutor(machine, overheads=ZERO_OH)
        r = ex.execute_profile(profile.tree, 2, ReplayMode.REAL)
        assert r.speedup == pytest.approx(2.0, rel=0.03)

    def test_repeat_compressed_equivalent(self):
        # Build compressed tree by hand; replay must expand repeats.
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC, name="s"))
        task = sec.add(Node(NodeKind.TASK, repeat=8))
        task.add(Node(NodeKind.U, length=50_000, cpu_cycles=50_000, instructions=50_000))
        from repro.core.tree import ProgramTree

        tree = ProgramTree(root)
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        r = ex.execute_profile(tree, 4, ReplayMode.REAL)
        assert r.speedup == pytest.approx(4.0, rel=0.02)


class TestFakeReplay:
    def test_fake_uses_measured_lengths(self):
        profile = balanced(8, 50_000)
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        real = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        fake = ex.execute_profile(profile.tree, 4, ReplayMode.FAKE)
        assert fake.speedup == pytest.approx(real.speedup, rel=0.02)

    def test_burden_slows_fake(self):
        profile = balanced()
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        plain = ex.execute_profile(profile.tree, 4, ReplayMode.FAKE)
        burdened = ex.execute_profile(
            profile.tree, 4, ReplayMode.FAKE, burdens={"loop": 1.5}
        )
        assert burdened.speedup == pytest.approx(plain.speedup / 1.5, rel=0.05)

    def test_burden_ignored_in_real(self):
        profile = balanced()
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        a = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        b = ex.execute_profile(profile.tree, 4, ReplayMode.REAL, burdens={"loop": 9.9})
        assert a.total_cycles == b.total_cycles

    def test_traversal_overhead_tracked_and_subtracted(self):
        profile = balanced(n=16, cost=1_000)
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        fake = ex.execute_profile(profile.tree, 2, ReplayMode.FAKE)
        run = fake.sections[0]
        assert run.traversal_overhead > 0
        assert run.net_cycles < run.gross_cycles
        # Per-worker overhead: at least the per-node cost times the nodes
        # one worker handled.
        assert run.traversal_overhead >= OVERHEAD_ACCESS_NODE * 8

    def test_real_has_no_traversal_overhead(self):
        profile = balanced()
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        real = ex.execute_profile(profile.tree, 2, ReplayMode.REAL)
        assert real.sections[0].traversal_overhead == 0.0

    def test_fake_does_not_touch_memory(self):
        """FakeDelay must not generate DRAM traffic: a memory-bound program
        replayed FAKE (burden 1) scales as if compute-bound."""

        def program(tr):
            spec = MemSpec(AccessPattern.STREAMING, bytes_touched=20_000_000)
            with tr.section("stream"):
                for _ in range(12):
                    with tr.task():
                        tr.compute(1_000_000, mem=spec)

        profile = profile_of(program, M12)
        ex = ParallelExecutor(M12, overheads=ZERO_OH)
        fake = ex.execute_profile(profile.tree, 12, ReplayMode.FAKE)
        assert fake.speedup == pytest.approx(12.0, rel=0.05)


class TestCilkReplay:
    def test_cilk_balanced(self):
        profile = balanced(16, 50_000)
        ex = ParallelExecutor(M, paradigm="cilk", overheads=ZERO_OH)
        r = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        assert r.speedup == pytest.approx(4.0, rel=0.15)

    def test_cilk_nested_scales(self):
        def program(tr):
            with tr.section("outer"):
                for _ in range(2):
                    with tr.task():
                        with tr.section("inner"):
                            for _ in range(2):
                                with tr.task():
                                    tr.compute(100_000)

        profile = profile_of(program)
        ex = ParallelExecutor(M, paradigm="cilk", overheads=ZERO_OH)
        r = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        # Work stealing flattens the nested structure: near-ideal.
        assert r.speedup == pytest.approx(4.0, rel=0.2)

    def test_cilk_locks(self):
        def program(tr):
            with tr.section("s"):
                for _ in range(4):
                    with tr.task():
                        with tr.lock(1):
                            tr.compute(25_000)

        profile = profile_of(program)
        ex = ParallelExecutor(M, paradigm="cilk", overheads=ZERO_OH)
        r = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        assert r.speedup == pytest.approx(1.0, rel=0.1)

    def test_steals_reported(self):
        profile = balanced(16, 10_000)
        ex = ParallelExecutor(M, paradigm="cilk", overheads=ZERO_OH)
        r = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        assert r.sections[0].steals > 0


class TestValidation:
    def test_unknown_paradigm(self):
        with pytest.raises(EmulationError):
            ParallelExecutor(M, paradigm="tbb")

    def test_execute_section_needs_sec(self):
        ex = ParallelExecutor(M)
        with pytest.raises(EmulationError):
            ex.execute_section(Node(NodeKind.TASK), 2)

    def test_schedules_affect_real_replay(self):
        def program(tr):
            with tr.section("ramp"):
                for i in range(12):
                    with tr.task():
                        tr.compute((i + 1) * 20_000)

        profile = profile_of(program)
        static = ParallelExecutor(M, schedule=Schedule.static(), overheads=ZERO_OH)
        rr = ParallelExecutor(M, schedule=Schedule.static_chunk(1), overheads=ZERO_OH)
        s_static = static.execute_profile(profile.tree, 4, ReplayMode.REAL).speedup
        s_rr = rr.execute_profile(profile.tree, 4, ReplayMode.REAL).speedup
        assert s_rr > s_static
