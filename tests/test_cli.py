"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("ompscr_md", "npb_ft", "ompscr_fft", "npb_cg"):
            assert name in out


class TestProfile:
    def test_profile_prints_sections(self, capsys):
        assert main(["profile", "npb_ep", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "ep_batches" in out
        assert "Mcycles serial" in out

    def test_profile_saves(self, tmp_path, capsys):
        path = tmp_path / "ep.json"
        assert main(["profile", "npb_ep", "-o", str(path)]) == 0
        assert path.exists()

    def test_unknown_workload_errors(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["profile", "npb_dt"])


class TestPredict:
    def test_predict_workload(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "npb_ep",
                    "--threads",
                    "2,4",
                    "--methods",
                    "syn",
                    "--no-memory-model",
                    "--no-real",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2-core" in out and "4-core" in out
        assert "syn" in out

    def test_predict_with_ground_truth(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "npb_ep",
                    "--threads",
                    "4",
                    "--no-memory-model",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ground truth" in out
        assert "error" in out

    def test_predict_saved_profile(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        main(["profile", "npb_ep", "-o", str(path), "--cores", "4"])
        capsys.readouterr()
        assert (
            main(
                [
                    "predict",
                    str(path),
                    "--threads",
                    "2",
                    "--no-real",
                    "--no-memory-model",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2-core" in out

    def test_cilk_paradigm_flag(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "ompscr_qsort",
                    "--threads",
                    "2",
                    "--methods",
                    "syn",
                    "--no-memory-model",
                    "--no-real",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cilk" in out


class TestTrace:
    def test_trace_writes_loadable_chrome_trace(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "npb_ep",
                    "--threads",
                    "2",
                    "--cores",
                    "4",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        data = json.loads(out_path.read_text())
        assert data["traceEvents"]
        phases = {rec["ph"] for rec in data["traceEvents"]}
        assert phases <= {"X", "I", "C", "M"}
        names = {
            rec["args"]["name"]
            for rec in data["traceEvents"]
            if rec["ph"] == "M" and rec["name"] == "thread_name"
        }
        assert "cpu0" in names and "cpu1" in names
        out = capsys.readouterr().out
        assert str(out_path) in out
        assert "events" in out

    def test_trace_syn_mode(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        assert (
            main(
                [
                    "trace",
                    "npb_ep",
                    "--threads",
                    "2",
                    "--mode",
                    "syn",
                    "--cores",
                    "4",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        assert out_path.exists()


class TestMetricsFlag:
    def test_predict_metrics_prints_registry(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "npb_ep",
                    "--threads",
                    "2",
                    "--methods",
                    "syn",
                    "--no-memory-model",
                    "--no-real",
                    "--cores",
                    "4",
                    "--metrics",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "syn.replays" in out


class TestCalibrate:
    def test_calibrate_prints_formulas(self, capsys):
        assert main(["calibrate", "--threads", "2,4"]) == 0
        out = capsys.readouterr().out
        assert "delta_2" in out
        assert "omega_t" in out


class TestDiagnose:
    def test_diagnose_workload(self, capsys):
        assert (
            main(["diagnose", "npb_ep", "--threads", "4", "--cores", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "dominant cause" in out
        assert "ep_batches" in out

    def test_diagnose_saved_profile(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        main(["profile", "npb_ep", "-o", str(path), "--cores", "4"])
        capsys.readouterr()
        assert (
            main(["diagnose", str(path), "--threads", "2", "--cores", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "dominant cause" in out


class TestSweepFailureExit:
    def test_sweep_with_failing_grid_points_exits_nonzero(self, capsys):
        """An unparsable schedule is deferred to the workers, fails there,
        and is collected — the CLI must warn on stderr and exit 1 rather
        than present the partial grid as authoritative."""
        rc = main(
            [
                "sweep",
                "npb_ep",
                "--threads",
                "2",
                "--schedules",
                "bogus_sched",
                "--no-memory-model",
                "--cores",
                "4",
            ]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "grid point(s) failed" in captured.err
        assert "grid point(s) failed" in captured.out  # table footnote too

    def test_clean_sweep_exits_zero(self, capsys):
        rc = main(
            [
                "sweep",
                "npb_ep",
                "--threads",
                "2",
                "--no-memory-model",
                "--cores",
                "4",
            ]
        )
        assert rc == 0
        assert capsys.readouterr().err == ""


class TestSelfcheck:
    def test_predict_selfcheck_passes_and_restores_checker(self, capsys):
        from repro.validate import get_checker

        before = (get_checker().enabled, get_checker().mode)
        rc = main(
            [
                "predict",
                "npb_ep",
                "--threads",
                "2,4",
                "--no-memory-model",
                "--cores",
                "4",
                "--selfcheck",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "selfcheck:" in out and "0 violations" in out
        assert (get_checker().enabled, get_checker().mode) == before

    def test_sweep_selfcheck_passes(self, capsys):
        rc = main(
            [
                "sweep",
                "npb_ep",
                "--threads",
                "2",
                "--methods",
                "syn,real",
                "--no-memory-model",
                "--cores",
                "4",
                "--selfcheck",
            ]
        )
        assert rc == 0
        assert "0 violations" in capsys.readouterr().out


class TestCheck:
    def test_check_quick_passes(self, capsys):
        from repro.validate import get_checker

        before = (get_checker().enabled, get_checker().mode)
        rc = main(["check", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "differential:" in out
        assert "0 violation(s)" in out
        assert "0 violations" in out  # invariant selfcheck line
        assert (get_checker().enabled, get_checker().mode) == before

    def test_check_explicit_grid(self, capsys):
        rc = main(
            [
                "check",
                "--workloads",
                "npb_ep",
                "--threads",
                "2",
                "--fuzz",
                "2",
                "--no-memory-model",
                "--cores",
                "4",
            ]
        )
        assert rc == 0
        assert "grid point(s)" in capsys.readouterr().out


class TestParadigmChoices:
    def test_omp_task_paradigm_accepted(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "npb_ep",
                    "--threads",
                    "2",
                    "--paradigm",
                    "omp_task",
                    "--methods",
                    "syn",
                    "--no-memory-model",
                    "--no-real",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "omp_task" in out


class TestServeCommand:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8765
        assert args.workers == 1
        assert args.queue_depth == 16
        assert args.max_grid_points == 4096
        assert args.backend == "auto"
        assert args.jobs == 1

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port",
                "0",
                "--queue-depth",
                "4",
                "--timeout",
                "5",
                "--backend",
                "eager",
                "--section-memo",
                "128",
            ]
        )
        assert args.port == 0
        assert args.queue_depth == 4
        assert args.timeout == 5.0
        assert args.backend == "eager"
        assert args.section_memo == 128

    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "magic"])
