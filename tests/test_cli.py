"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("ompscr_md", "npb_ft", "ompscr_fft", "npb_cg"):
            assert name in out


class TestProfile:
    def test_profile_prints_sections(self, capsys):
        assert main(["profile", "npb_ep", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "ep_batches" in out
        assert "Mcycles serial" in out

    def test_profile_saves(self, tmp_path, capsys):
        path = tmp_path / "ep.json"
        assert main(["profile", "npb_ep", "-o", str(path)]) == 0
        assert path.exists()

    def test_unknown_workload_errors(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["profile", "npb_dt"])


class TestPredict:
    def test_predict_workload(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "npb_ep",
                    "--threads",
                    "2,4",
                    "--methods",
                    "syn",
                    "--no-memory-model",
                    "--no-real",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2-core" in out and "4-core" in out
        assert "syn" in out

    def test_predict_with_ground_truth(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "npb_ep",
                    "--threads",
                    "4",
                    "--no-memory-model",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ground truth" in out
        assert "error" in out

    def test_predict_saved_profile(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        main(["profile", "npb_ep", "-o", str(path), "--cores", "4"])
        capsys.readouterr()
        assert (
            main(
                [
                    "predict",
                    str(path),
                    "--threads",
                    "2",
                    "--no-real",
                    "--no-memory-model",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2-core" in out

    def test_cilk_paradigm_flag(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "ompscr_qsort",
                    "--threads",
                    "2",
                    "--methods",
                    "syn",
                    "--no-memory-model",
                    "--no-real",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cilk" in out


class TestTrace:
    def test_trace_writes_loadable_chrome_trace(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "npb_ep",
                    "--threads",
                    "2",
                    "--cores",
                    "4",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        data = json.loads(out_path.read_text())
        assert data["traceEvents"]
        phases = {rec["ph"] for rec in data["traceEvents"]}
        assert phases <= {"X", "I", "C", "M"}
        names = {
            rec["args"]["name"]
            for rec in data["traceEvents"]
            if rec["ph"] == "M" and rec["name"] == "thread_name"
        }
        assert "cpu0" in names and "cpu1" in names
        out = capsys.readouterr().out
        assert str(out_path) in out
        assert "events" in out

    def test_trace_syn_mode(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        assert (
            main(
                [
                    "trace",
                    "npb_ep",
                    "--threads",
                    "2",
                    "--mode",
                    "syn",
                    "--cores",
                    "4",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        assert out_path.exists()


class TestMetricsFlag:
    def test_predict_metrics_prints_registry(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "npb_ep",
                    "--threads",
                    "2",
                    "--methods",
                    "syn",
                    "--no-memory-model",
                    "--no-real",
                    "--cores",
                    "4",
                    "--metrics",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "syn.replays" in out


class TestCalibrate:
    def test_calibrate_prints_formulas(self, capsys):
        assert main(["calibrate", "--threads", "2,4"]) == 0
        out = capsys.readouterr().out
        assert "delta_2" in out
        assert "omega_t" in out


class TestDiagnose:
    def test_diagnose_workload(self, capsys):
        assert (
            main(["diagnose", "npb_ep", "--threads", "4", "--cores", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "dominant cause" in out
        assert "ep_batches" in out

    def test_diagnose_saved_profile(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        main(["profile", "npb_ep", "-o", str(path), "--cores", "4"])
        capsys.readouterr()
        assert (
            main(["diagnose", str(path), "--threads", "2", "--cores", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "dominant cause" in out


class TestParadigmChoices:
    def test_omp_task_paradigm_accepted(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "npb_ep",
                    "--threads",
                    "2",
                    "--paradigm",
                    "omp_task",
                    "--methods",
                    "syn",
                    "--no-memory-model",
                    "--no-real",
                    "--cores",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "omp_task" in out
