"""Unit tests for the daemon's budgets, work queue, and cache layer.

Everything here runs in-process with no sockets: the HTTP shell is a
thin adapter tested in ``test_serve.py``; the admission-control and
cache-lifetime logic lives in these classes.
"""

import threading

import pytest

from repro.errors import ReproError, ServeError
from repro.obs import MetricsRegistry, set_metrics
from repro.serve import (
    BudgetExceeded,
    CacheLayer,
    Deadline,
    DeadlineExceeded,
    LRUCache,
    QueueFull,
    RequestBudgets,
    WorkQueue,
)


@pytest.fixture(autouse=True)
def fresh_metrics():
    registry = MetricsRegistry()
    set_metrics(registry)
    yield registry


class TestErrorTaxonomy:
    def test_statuses_and_codes(self):
        assert QueueFull.status == 429 and QueueFull.code == "queue_full"
        assert BudgetExceeded.status == 413
        assert BudgetExceeded.code == "grid_budget_exceeded"
        assert DeadlineExceeded.status == 504
        assert DeadlineExceeded.code == "deadline_exceeded"

    def test_all_are_repro_errors(self):
        for exc in (QueueFull, BudgetExceeded, DeadlineExceeded):
            assert issubclass(exc, ServeError)
            assert issubclass(exc, ReproError)


class TestRequestBudgets:
    def test_grid_within_budget_passes(self):
        RequestBudgets(max_grid_points=10).check_grid(10)

    def test_grid_over_budget_refused(self):
        with pytest.raises(BudgetExceeded):
            RequestBudgets(max_grid_points=10).check_grid(11)

    def test_thread_count_over_budget_refused(self):
        with pytest.raises(BudgetExceeded):
            RequestBudgets(max_threads=64).check_threads([2, 65])

    def test_non_integer_threads_refused(self):
        for bad in ([2, "four"], [0], [-1], [2.5]):
            with pytest.raises(ServeError):
                RequestBudgets().check_threads(bad)

    def test_clamp_timeout_defaults_to_ceiling(self):
        assert RequestBudgets(timeout_s=30.0).clamp_timeout(None) == 30.0

    def test_clamp_timeout_caps_the_ask(self):
        budgets = RequestBudgets(timeout_s=30.0)
        assert budgets.clamp_timeout(5) == 5.0
        assert budgets.clamp_timeout(300) == 30.0

    def test_clamp_timeout_rejects_garbage(self):
        for bad in ("soon", 0, -1):
            with pytest.raises(ServeError):
                RequestBudgets().clamp_timeout(bad)


class TestDeadline:
    def test_remaining_counts_down_and_floors_at_zero(self):
        deadline = Deadline(0.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_fresh_deadline_not_expired(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert 0.0 < deadline.remaining() <= 60.0


class TestLRUCache:
    def test_hit_miss_counters(self, fresh_metrics):
        cache = LRUCache("t", maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert fresh_metrics.counters()["serve.cache.t.hits"] == 1
        assert fresh_metrics.counters()["serve.cache.t.misses"] == 1

    def test_lru_eviction_order(self):
        cache = LRUCache("t", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.info()["evictions"] == 1

    def test_on_evict_runs_for_capacity_and_clear(self):
        seen = []
        cache = LRUCache("t", maxsize=1, on_evict=seen.append)
        cache.put("a", "old")
        cache.put("b", "new")
        assert seen == ["old"]
        assert cache.clear() == 1
        assert seen == ["old", "new"]
        assert len(cache) == 0

    def test_get_or_create_builds_once(self):
        calls = []
        cache = LRUCache("t", maxsize=4)

        def factory():
            calls.append(1)
            return "built"

        assert cache.get_or_create("k", factory) == "built"
        assert cache.get_or_create("k", factory) == "built"
        assert len(calls) == 1

    def test_get_or_create_race_first_put_wins(self, fresh_metrics):
        # Four racing creators on one key: all of them build (the factory
        # runs outside the lock), but every racer returns the single value
        # that won the insert, and the losing builds are released through
        # on_evict instead of leaking.
        released = []
        cache = LRUCache("t", maxsize=4, on_evict=released.append)
        barrier = threading.Barrier(4)
        builds = []
        results = [None] * 4

        def run(i):
            def factory():
                barrier.wait(10.0)
                builds.append(i)
                return f"built-{i}"

            results[i] = cache.get_or_create("k", factory)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert len(builds) == 4
        assert len(set(results)) == 1
        winner = results[0]
        assert cache.get("k") == winner
        assert sorted(released) == sorted(
            f"built-{i}" for i in range(4) if f"built-{i}" != winner
        )
        assert cache.info()["size"] == 1
        assert cache.races == 3
        assert fresh_metrics.counters()["serve.cache.t.races"] == 3

    def test_none_values_rejected(self):
        # None is the miss signal: caching it would make the entry
        # indistinguishable from a miss and rebuilt forever.
        cache = LRUCache("t", maxsize=4)
        with pytest.raises(ValueError, match="miss signal"):
            cache.put("k", None)
        with pytest.raises(ValueError, match="miss signal"):
            cache.get_or_create("k", lambda: None)

    def test_falsy_non_none_values_are_cached(self):
        cache = LRUCache("t", maxsize=4)
        cache.put("zero", 0)
        assert cache.get("zero") == 0
        assert cache.get_or_create("zero", lambda: 99) == 0

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache("t", maxsize=0)


class TestWorkQueue:
    def test_submit_runs_and_returns(self):
        q = WorkQueue(workers=1, depth=4)
        job = q.submit(lambda: 41 + 1, Deadline(10.0), label="t")
        assert job.wait(10.0) == 42
        assert q.stats()["completed"] == 1
        q.shutdown(timeout=5.0)

    def test_worker_error_reraised_to_waiter(self):
        q = WorkQueue(workers=1, depth=4)

        def boom():
            raise ValueError("from the worker")

        job = q.submit(boom, Deadline(10.0), label="t")
        with pytest.raises(ValueError, match="from the worker"):
            job.wait(10.0)
        q.shutdown(timeout=5.0)

    def test_single_worker_preserves_fifo_order(self):
        q = WorkQueue(workers=1, depth=16)
        order = []
        jobs = [
            q.submit(lambda i=i: order.append(i), Deadline(10.0), label="t")
            for i in range(8)
        ]
        for job in jobs:
            job.wait(10.0)
        assert order == list(range(8))
        q.shutdown(timeout=5.0)

    def test_full_queue_refuses_with_429(self, fresh_metrics):
        started, release = threading.Event(), threading.Event()
        q = WorkQueue(workers=1, depth=2)

        def block():
            started.set()
            release.wait()

        blocker = q.submit(block, Deadline(30.0), label="blocker")
        assert started.wait(10.0)  # the worker holds it: the queue is empty
        pending = [
            q.submit(lambda: None, Deadline(30.0), label="fill") for _ in range(2)
        ]
        with pytest.raises(QueueFull):
            q.submit(lambda: None, Deadline(30.0), label="overflow")
        assert q.stats()["rejected"] == 1
        assert fresh_metrics.counters()["serve.queue.rejected"] == 1
        release.set()
        for job in (blocker, *pending):
            job.wait(10.0)
        q.shutdown(timeout=5.0)

    def test_job_expired_while_queued_is_dropped(self):
        release = threading.Event()
        q = WorkQueue(workers=1, depth=4)
        blocker = q.submit(release.wait, Deadline(30.0), label="blocker")
        ran = []
        stale = q.submit(lambda: ran.append(1), Deadline(0.0), label="stale")
        release.set()
        blocker.wait(10.0)
        with pytest.raises(DeadlineExceeded):
            stale.wait(10.0)
        assert not ran
        assert q.stats()["expired"] == 1
        q.shutdown(timeout=5.0)

    def test_wait_timeout_raises_deadline_exceeded(self):
        release = threading.Event()
        q = WorkQueue(workers=1, depth=4)
        job = q.submit(release.wait, Deadline(0.05), label="slow")
        with pytest.raises(DeadlineExceeded):
            job.wait(0.05)
        release.set()
        q.shutdown(timeout=5.0)

    def test_shutdown_drains_accepted_work(self):
        q = WorkQueue(workers=1, depth=16)
        done = []
        jobs = [
            q.submit(lambda i=i: done.append(i), Deadline(30.0), label="t")
            for i in range(6)
        ]
        assert q.shutdown(timeout=10.0)
        assert sorted(done) == list(range(6))
        assert all(job.done for job in jobs)

    def test_submit_after_shutdown_refused(self):
        q = WorkQueue(workers=1, depth=4)
        q.shutdown(timeout=5.0)
        with pytest.raises(QueueFull, match="shutting down"):
            q.submit(lambda: None, Deadline(10.0), label="late")

    def test_shutdown_idempotent(self):
        q = WorkQueue(workers=1, depth=4)
        assert q.shutdown(timeout=5.0)
        assert q.shutdown(timeout=5.0)

    def test_shutdown_timeout_reports_stuck_worker(self):
        # A worker wedged in a job outlives the shutdown deadline: the
        # call must return False, stats() must report the zombie as alive,
        # and a *repeat* shutdown must re-check instead of claiming
        # success — until the job unblocks, after which shutdown succeeds
        # and the worker really exits.
        release = threading.Event()
        q = WorkQueue(workers=1, depth=4)
        q.submit(release.wait, Deadline(30.0), label="stuck")
        assert q.stats()["alive"] == 1
        assert q.shutdown(timeout=0.1) is False
        assert q.stats()["alive"] == 1
        assert q.shutdown(timeout=0.1) is False  # idempotent *and* honest
        release.set()
        assert q.shutdown(timeout=10.0) is True
        assert q.stats()["alive"] == 0

    def test_stats_reports_alive_workers(self):
        q = WorkQueue(workers=2, depth=4)
        stats = q.stats()
        assert stats["workers"] == 2 and stats["alive"] == 2
        assert q.shutdown(timeout=10.0)
        assert q.stats()["alive"] == 0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            WorkQueue(workers=0)
        with pytest.raises(ValueError):
            WorkQueue(depth=0)


class TestCacheLayer:
    def test_predictor_cached_per_machine_shape(self):
        layer = CacheLayer()
        first = layer.predictor_for(4)
        again = layer.predictor_for(4)
        other = layer.predictor_for(6)
        assert first is again
        assert first is not other
        assert layer.predictors.info()["hits"] == 1

    def test_profile_cached_per_workload_and_machine(self):
        layer = CacheLayer()
        prophet, _ = layer.predictor_for(4)
        first = layer.profile_for("npb_ep", 4, prophet)
        again = layer.profile_for("npb_ep", 4, prophet)
        assert first is again
        assert layer.profiles.info()["hits"] == 1

    def test_evicted_predictor_is_reset(self):
        layer = CacheLayer(predictor_size=1)
        _, predictor = layer.predictor_for(4)
        predictor._executors["sentinel"] = object()
        layer.predictor_for(6)  # evicts the 4-core pair
        assert len(predictor._executors) == 0

    def test_stats_shape(self):
        layer = CacheLayer()
        layer.predictor_for(4)
        stats = layer.stats()
        assert set(stats) == {"classes", "predictors"}
        for name in ("predictor", "profile", "response", "section_memo"):
            assert name in stats["classes"]
        assert "4" in stats["predictors"]
        assert "executors" in stats["predictors"]["4"]

    def test_clear_returns_counts_and_resets(self):
        layer = CacheLayer()
        prophet, predictor = layer.predictor_for(4)
        layer.profile_for("npb_ep", 4, prophet)
        layer.responses.put("k", {"v": 1})
        predictor._executors["sentinel"] = object()
        cleared = layer.clear()
        assert cleared["predictor"] == 1
        assert cleared["profile"] == 1
        assert cleared["response"] == 1
        assert len(predictor._executors) == 0
        assert len(layer.predictors) == 0
