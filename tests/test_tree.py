"""Tests for program-tree structure, metrics, and validation."""

import pytest

from repro.core.tree import Node, NodeKind, ProgramTree, nodes_similar
from repro.errors import ConfigurationError


def leaf(length, lock_id=None, repeat=1):
    kind = NodeKind.L if lock_id is not None else NodeKind.U
    return Node(kind, length=length, lock_id=lock_id, repeat=repeat)


def simple_tree() -> ProgramTree:
    root = Node(NodeKind.ROOT)
    sec = root.add(Node(NodeKind.SEC, name="loop"))
    for i in range(3):
        task = sec.add(Node(NodeKind.TASK, name=f"t{i}"))
        task.add(leaf(100.0 * (i + 1)))
    root.add(Node(NodeKind.U, length=50.0))
    return ProgramTree(root)


class TestNodeConstruction:
    def test_l_requires_lock(self):
        with pytest.raises(ConfigurationError):
            Node(NodeKind.L, length=10)

    def test_u_rejects_lock(self):
        with pytest.raises(ConfigurationError):
            Node(NodeKind.U, length=10, lock_id=1)

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            Node(NodeKind.U, length=-1)

    def test_zero_repeat_rejected(self):
        with pytest.raises(ConfigurationError):
            Node(NodeKind.U, length=1, repeat=0)


class TestStructureValidation:
    def test_valid_tree(self):
        simple_tree()  # no raise

    def test_task_under_root_rejected(self):
        root = Node(NodeKind.ROOT)
        root.add(Node(NodeKind.TASK))
        with pytest.raises(ConfigurationError):
            ProgramTree(root)

    def test_u_under_sec_rejected(self):
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC))
        sec.add(leaf(10))
        with pytest.raises(ConfigurationError):
            ProgramTree(root)

    def test_non_root_rejected(self):
        with pytest.raises(ConfigurationError):
            ProgramTree(Node(NodeKind.SEC))

    def test_leaf_with_children_rejected(self):
        root = Node(NodeKind.ROOT)
        u = root.add(Node(NodeKind.U, length=1))
        u.children.append(Node(NodeKind.U, length=1))
        with pytest.raises(ConfigurationError):
            ProgramTree(root)


class TestMetrics:
    def test_subtree_length(self):
        tree = simple_tree()
        assert tree.serial_cycles() == pytest.approx(100 + 200 + 300 + 50)

    def test_repeat_expands_length(self):
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC))
        task = sec.add(Node(NodeKind.TASK, repeat=4))
        task.add(leaf(100, repeat=3))
        tree = ProgramTree(root)
        assert tree.serial_cycles() == pytest.approx(4 * 3 * 100)

    def test_logical_vs_unique_nodes(self):
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC))
        task = sec.add(Node(NodeKind.TASK, repeat=10))
        task.add(leaf(100))
        tree = ProgramTree(root)
        assert tree.unique_nodes() == 4
        assert tree.logical_nodes() == 1 + 1 + 10 * 2

    def test_shared_nodes_counted_once(self):
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC))
        shared_task = Node(NodeKind.TASK)
        shared_task.add(leaf(5))
        sec.children.extend([shared_task, shared_task])
        tree = ProgramTree(root)
        assert tree.unique_nodes() == 4  # root, sec, task, leaf

    def test_serial_fraction(self):
        tree = simple_tree()
        assert tree.serial_fraction() == pytest.approx(50 / 650)

    def test_serial_fraction_empty(self):
        tree = ProgramTree(Node(NodeKind.ROOT))
        assert tree.serial_fraction() == 0.0

    def test_max_depth(self):
        tree = simple_tree()
        assert tree.max_depth() == 4  # root -> sec -> task -> leaf

    def test_top_level_queries(self):
        tree = simple_tree()
        assert len(tree.top_level_sections()) == 1
        assert len(tree.top_level_serial()) == 1

    def test_estimated_bytes(self):
        tree = simple_tree()
        assert tree.estimated_bytes(compressed=False) >= tree.estimated_bytes()

    def test_pretty_renders(self):
        text = simple_tree().pretty()
        assert "Sec" in text and "task" in text and "U" in text


class TestSimilarity:
    def test_identical_similar(self):
        a, b = leaf(100), leaf(100)
        assert nodes_similar(a, b, 0.0)

    def test_within_tolerance(self):
        assert nodes_similar(leaf(100), leaf(104), 0.05)
        assert not nodes_similar(leaf(100), leaf(110), 0.05)

    def test_different_kind(self):
        assert not nodes_similar(leaf(100), leaf(100, lock_id=1), 0.5)

    def test_different_lock_id(self):
        assert not nodes_similar(leaf(100, lock_id=1), leaf(100, lock_id=2), 0.5)

    def test_recursive_comparison(self):
        def task(lengths):
            t = Node(NodeKind.TASK)
            for ln in lengths:
                t.add(leaf(ln))
            return t

        assert nodes_similar(task([100, 200]), task([101, 199]), 0.05)
        assert not nodes_similar(task([100, 200]), task([100, 300]), 0.05)
        assert not nodes_similar(task([100]), task([100, 100]), 0.05)

    def test_zero_lengths_similar(self):
        assert nodes_similar(leaf(0), leaf(0), 0.0)


class TestWalk:
    def test_walk_visits_all_unique(self):
        tree = simple_tree()
        assert len(list(tree.root.walk())) == tree.unique_nodes()

    def test_map_leaves(self):
        tree = simple_tree()
        seen = []
        tree.map_leaves(lambda n: seen.append(n.length))
        assert sorted(seen) == [50.0, 100.0, 200.0, 300.0]
