"""Tests for the fast-forward emulator (paper Section IV-C/D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ffemu import FastForwardEmulator
from repro.core.profiler import IntervalProfiler
from repro.core.tree import Node, NodeKind
from repro.errors import EmulationError
from repro.runtime import RuntimeOverheads, Schedule
from repro.simhw import MachineConfig

M = MachineConfig(n_cores=12)
ZERO_OH = RuntimeOverheads().scaled(0.0)

lengths = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)


def profile_of(program):
    return IntervalProfiler(M).profile(program)


def balanced_loop(n_tasks=12, cost=10_000):
    def program(tr):
        with tr.section("loop"):
            for _ in range(n_tasks):
                with tr.task():
                    tr.compute(cost)

    return profile_of(program)


class TestBasicPrediction:
    def test_single_thread_is_serial(self):
        profile = balanced_loop()
        ff = FastForwardEmulator(ZERO_OH)
        time, _ = ff.emulate_profile(profile.tree, 1, Schedule.static())
        assert time == pytest.approx(profile.serial_cycles())

    def test_balanced_loop_ideal(self):
        profile = balanced_loop(12, 10_000)
        ff = FastForwardEmulator(ZERO_OH)
        time, _ = ff.emulate_profile(profile.tree, 4, Schedule.static())
        assert time == pytest.approx(30_000.0)

    def test_speedup_never_exceeds_threads(self):
        profile = balanced_loop(24, 5_000)
        ff = FastForwardEmulator(ZERO_OH)
        for t in (2, 4, 8):
            time, _ = ff.emulate_profile(profile.tree, t, Schedule.static())
            assert profile.serial_cycles() / time <= t + 1e-9

    def test_serial_top_level_nodes_pass_through(self):
        def program(tr):
            tr.compute(10_000)
            with tr.section("s"):
                with tr.task():
                    tr.compute(1000)

        profile = profile_of(program)
        ff = FastForwardEmulator(ZERO_OH)
        time, _ = ff.emulate_profile(profile.tree, 8, Schedule.static())
        assert time >= 10_000.0

    def test_section_results_reported(self):
        profile = balanced_loop()
        ff = FastForwardEmulator(ZERO_OH)
        _, sections = ff.emulate_profile(profile.tree, 4, Schedule.static())
        assert len(sections) == 1
        assert sections[0].name == "loop"
        assert sections[0].speedup == pytest.approx(4.0, rel=0.01)

    def test_needs_sec_node(self):
        ff = FastForwardEmulator()
        with pytest.raises(EmulationError):
            ff.emulate_section(Node(NodeKind.TASK), 2, Schedule.static())

    def test_invalid_thread_count(self):
        profile = balanced_loop()
        ff = FastForwardEmulator()
        with pytest.raises(EmulationError):
            ff.emulate_section(
                profile.tree.top_level_sections()[0], 0, Schedule.static()
            )


class TestScheduleModelling:
    """The Fig. 5 scenario: three unequal iterations with a lock on 2 CPUs;
    schedule choice changes the speedup."""

    @pytest.fixture
    def fig5_profile(self):
        # Iterations: 650 (150 U, 250 L, 50 U... simplified), 600, 250.
        def program(tr):
            with tr.section("loop"):
                with tr.task("I0"):
                    tr.compute(150)
                    with tr.lock(1):
                        tr.compute(450)
                    tr.compute(50)
                with tr.task("I1"):
                    tr.compute(100)
                    with tr.lock(1):
                        tr.compute(300)
                    tr.compute(200)
                with tr.task("I2"):
                    tr.compute(150)
                    tr.compute(50)
                    tr.compute(50)

        return profile_of(program)

    def test_schedules_differ(self, fig5_profile):
        ff = FastForwardEmulator(ZERO_OH)
        results = {}
        for sched in ("static", "static,1", "dynamic,1"):
            time, _ = ff.emulate_profile(fig5_profile.tree, 2, Schedule.parse(sched))
            results[sched] = fig5_profile.serial_cycles() / time
        # Paper Fig. 5: dynamic,1 (1.58) > static,1 (1.30) > static (1.20).
        assert results["dynamic,1"] > results["static,1"] > results["static"]

    def test_lock_serialization(self):
        # Two tasks that are pure critical section on the same lock cannot
        # overlap: speedup stays ~1.
        def program(tr):
            with tr.section("s"):
                for _ in range(4):
                    with tr.task():
                        with tr.lock(1):
                            tr.compute(10_000)

        profile = profile_of(program)
        ff = FastForwardEmulator(ZERO_OH)
        time, _ = ff.emulate_profile(profile.tree, 4, Schedule.static_chunk(1))
        assert time == pytest.approx(40_000.0, rel=0.01)

    def test_different_locks_dont_serialize(self):
        def program(tr):
            with tr.section("s"):
                for lock in (1, 2):
                    with tr.task():
                        with tr.lock(lock):
                            tr.compute(10_000)

        profile = profile_of(program)
        ff = FastForwardEmulator(ZERO_OH)
        time, _ = ff.emulate_profile(profile.tree, 2, Schedule.static_chunk(1))
        assert time == pytest.approx(10_000.0, rel=0.01)


class TestNestedParallelism:
    def test_fig7_misprediction(self):
        """The FF's documented blind spot: predicts 1.5x where the real
        (preemptive) machine reaches 2.0x."""
        unit = 1e6

        def program(tr):
            with tr.section("Loop1"):
                with tr.task("I0"):
                    with tr.section("LoopA"):
                        with tr.task():
                            tr.compute(10 * unit)
                        with tr.task():
                            tr.compute(5 * unit)
                with tr.task("I1"):
                    with tr.section("LoopB"):
                        with tr.task():
                            tr.compute(5 * unit)
                        with tr.task():
                            tr.compute(10 * unit)

        profile = profile_of(program)
        ff = FastForwardEmulator(ZERO_OH)
        time, _ = ff.emulate_profile(profile.tree, 2, Schedule.static())
        assert profile.serial_cycles() / time == pytest.approx(1.5, rel=0.01)

    def test_balanced_nested_loop_shows_rr_collision(self):
        """Parent-relative round-robin is availability-blind: outer task 0
        maps its inner tasks to CPUs {0,1} and outer task 1 to {1,2}, so
        CPU 1 serialises two inner tasks while CPU 3 idles.  The FF predicts
        2x the ideal time here — by design (Section IV-D); the synthesizer
        path gets the ideal 10k (see test_executor)."""

        def program(tr):
            with tr.section("outer"):
                for _ in range(2):
                    with tr.task():
                        with tr.section("inner"):
                            for _ in range(2):
                                with tr.task():
                                    tr.compute(10_000)

        profile = profile_of(program)
        ff = FastForwardEmulator(ZERO_OH)
        time, _ = ff.emulate_profile(profile.tree, 4, Schedule.static())
        assert time == pytest.approx(20_000.0, rel=0.01)

    def test_repeated_nested_sections_are_sequential(self):
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC, name="outer"))
        task = sec.add(Node(NodeKind.TASK))
        inner = task.add(Node(NodeKind.SEC, name="inner", repeat=3))
        it = inner.add(Node(NodeKind.TASK))
        it.add(Node(NodeKind.U, length=1000))
        ff = FastForwardEmulator(ZERO_OH)
        time = ff.emulate_section(sec, 4, Schedule.static())
        # Three sequential activations of a single-task section.
        assert time == pytest.approx(3000.0, rel=0.01)


class TestBurdenFactors:
    def test_burden_scales_section_time(self):
        profile = balanced_loop(8, 10_000)
        ff = FastForwardEmulator(ZERO_OH)
        t_plain, _ = ff.emulate_profile(profile.tree, 4, Schedule.static())
        t_burdened, _ = ff.emulate_profile(
            profile.tree, 4, Schedule.static(), burdens={"loop": 1.5}
        )
        assert t_burdened == pytest.approx(1.5 * t_plain, rel=0.01)

    def test_unknown_section_name_ignored(self):
        profile = balanced_loop()
        ff = FastForwardEmulator(ZERO_OH)
        a, _ = ff.emulate_profile(profile.tree, 4, Schedule.static())
        b, _ = ff.emulate_profile(
            profile.tree, 4, Schedule.static(), burdens={"other": 2.0}
        )
        assert a == b


class TestOverheadModelling:
    def test_fork_join_charged_per_section(self):
        profile = balanced_loop(4, 1000)
        oh = RuntimeOverheads().scaled(0.0).with_(
            omp_fork_base=5000.0, omp_join_barrier=3000.0
        )
        ff = FastForwardEmulator(oh)
        time, _ = ff.emulate_profile(profile.tree, 4, Schedule.static())
        assert time >= 5000.0 + 3000.0 + 1000.0

    def test_dynamic_dispatch_costlier(self):
        profile = balanced_loop(32, 1000)
        ff = FastForwardEmulator(RuntimeOverheads())
        t_static, _ = ff.emulate_profile(profile.tree, 4, Schedule.static_chunk(1))
        t_dyn, _ = ff.emulate_profile(profile.tree, 4, Schedule.dynamic(1))
        assert t_dyn > t_static

    def test_nodes_visited_counted(self):
        profile = balanced_loop(10)
        ff = FastForwardEmulator(ZERO_OH, fast_path=False)
        ff.emulate_profile(profile.tree, 2, Schedule.static())
        assert ff.nodes_visited >= 10
        # The RLE fast path costs one visit per *stored* node, not per
        # logical iteration (the compressed loop is a single repeated task).
        fast = FastForwardEmulator(ZERO_OH)
        fast.emulate_profile(profile.tree, 2, Schedule.static())
        assert 1 <= fast.nodes_visited < ff.nodes_visited


class TestFastPathParity:
    """The closed-form RLE fast path must match the exact heap walk on every
    tree it claims (static family, U-only tasks) and fall back otherwise."""

    @staticmethod
    def _both(sec, n_threads, schedule, burden=1.0):
        fast = FastForwardEmulator(ZERO_OH)
        exact = FastForwardEmulator(ZERO_OH, fast_path=False)
        a = fast.emulate_section(sec, n_threads, schedule, burden=burden)
        b = exact.emulate_section(sec, n_threads, schedule, burden=burden)
        return fast, a, b

    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_matches_exact_walk(self, data):
        """Random compressed runs x {static, static,c, dynamic} x 1-12
        threads: fast-path result within 1e-9 relative of the heap walk."""
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC, name="s"))
        for _ in range(data.draw(st.integers(1, 6), label="runs")):
            task = sec.add(
                Node(NodeKind.TASK, repeat=data.draw(st.integers(1, 50)))
            )
            for _ in range(data.draw(st.integers(1, 3), label="leaves")):
                task.add(
                    Node(
                        NodeKind.U,
                        length=data.draw(lengths),
                        repeat=data.draw(st.integers(1, 4)),
                    )
                )
        schedule = data.draw(
            st.sampled_from(
                [Schedule.static(), Schedule.dynamic(1)]
                + [Schedule.static_chunk(c) for c in (1, 2, 3, 7)]
            ),
            label="schedule",
        )
        n_threads = data.draw(st.integers(1, 12), label="threads")
        burden = data.draw(st.sampled_from([1.0, 1.37]), label="burden")

        fast, a, b = self._both(sec, n_threads, schedule, burden)
        assert a == pytest.approx(b, rel=1e-9)
        if not schedule.is_dynamic_family:
            assert fast.fast_path_hits == 1

    def test_overheads_included(self):
        # Fork/dispatch/join charging matches the exact walk too.
        sec = Node(NodeKind.SEC, name="s")
        Node(NodeKind.ROOT).add(sec)
        task = sec.add(Node(NodeKind.TASK, repeat=23))
        task.add(Node(NodeKind.U, length=1500.0))
        oh = RuntimeOverheads()
        for sched in (Schedule.static(), Schedule.static_chunk(3)):
            for t in (1, 4, 6):
                fast = FastForwardEmulator(oh)
                exact = FastForwardEmulator(oh, fast_path=False)
                a = fast.emulate_section(sec, t, sched)
                b = exact.emulate_section(sec, t, sched)
                assert a == pytest.approx(b, rel=1e-9)
                assert fast.fast_path_hits == 1

    def test_lock_falls_back(self):
        def program(tr):
            with tr.section("s"):
                for _ in range(4):
                    with tr.task():
                        with tr.lock(1):
                            tr.compute(10_000)

        profile = profile_of(program)
        ff = FastForwardEmulator(ZERO_OH)
        time, _ = ff.emulate_profile(profile.tree, 4, Schedule.static_chunk(1))
        assert ff.fast_path_misses >= 1 and ff.fast_path_hits == 0
        assert time == pytest.approx(40_000.0, rel=0.01)

    def test_nested_section_falls_back(self):
        def program(tr):
            with tr.section("outer"):
                for _ in range(2):
                    with tr.task():
                        with tr.section("inner"):
                            with tr.task():
                                tr.compute(5_000)

        profile = profile_of(program)
        ff = FastForwardEmulator(ZERO_OH)
        exact = FastForwardEmulator(ZERO_OH, fast_path=False)
        a, _ = ff.emulate_profile(profile.tree, 4, Schedule.static())
        b, _ = exact.emulate_profile(profile.tree, 4, Schedule.static())
        assert a == b
        assert ff.fast_path_misses >= 1

    def test_disabled_takes_no_fast_path(self):
        profile = balanced_loop(16)
        ff = FastForwardEmulator(ZERO_OH, fast_path=False)
        ff.emulate_profile(profile.tree, 4, Schedule.static())
        assert ff.fast_path_hits == 0 and ff.fast_path_misses == 0

    def test_more_threads_than_chunks(self):
        # Threads beyond the chunk count contribute fork time only.
        sec = Node(NodeKind.SEC, name="s")
        Node(NodeKind.ROOT).add(sec)
        task = sec.add(Node(NodeKind.TASK, repeat=3))
        task.add(Node(NodeKind.U, length=1000.0))
        fast, a, b = self._both(sec, 8, Schedule.static_chunk(2))
        assert a == pytest.approx(b, rel=1e-9)
        assert fast.fast_path_hits == 1


class TestCompressedTrees:
    def test_repeat_expansion_matches_explicit(self):
        # A compressed section (one task, repeat=12) must emulate the same
        # as twelve explicit identical tasks.
        explicit = Node(NodeKind.ROOT)
        sec_e = explicit.add(Node(NodeKind.SEC, name="s"))
        for _ in range(12):
            t = sec_e.add(Node(NodeKind.TASK))
            t.add(Node(NodeKind.U, length=1000))

        compressed = Node(NodeKind.ROOT)
        sec_c = compressed.add(Node(NodeKind.SEC, name="s"))
        t = sec_c.add(Node(NodeKind.TASK, repeat=12))
        t.add(Node(NodeKind.U, length=1000))

        ff = FastForwardEmulator(ZERO_OH)
        a = ff.emulate_section(sec_e, 4, Schedule.static())
        b = ff.emulate_section(sec_c, 4, Schedule.static())
        assert a == pytest.approx(b)


class TestCounterSemantics:
    """The bugfix: fast-path hit/miss attributes are per-emulation scratch
    (emulate_profile resets them on entry), while cumulative totals live on
    the process metrics registry."""

    def test_emulate_profile_resets_instance_counters(self):
        ff = FastForwardEmulator(ZERO_OH)
        profile = balanced_loop(8)
        ff.emulate_profile(profile.tree, 4, Schedule.static())
        first = (ff.fast_path_hits, ff.fast_path_misses, ff.nodes_visited)
        ff.emulate_profile(profile.tree, 4, Schedule.static())
        # A shared emulator reused across grid points reports the *last*
        # emulation, not an ever-growing sum (the seed leaked counts).
        assert (ff.fast_path_hits, ff.fast_path_misses, ff.nodes_visited) == first

    def test_reset_counters_between_direct_section_calls(self):
        sec = Node(NodeKind.SEC, name="s")
        Node(NodeKind.ROOT).add(sec)
        task = sec.add(Node(NodeKind.TASK, repeat=4))
        task.add(Node(NodeKind.U, length=1000.0))
        ff = FastForwardEmulator(ZERO_OH)
        ff.emulate_section(sec, 2, Schedule.static())
        ff.emulate_section(sec, 4, Schedule.static())
        assert ff.fast_path_hits == 2
        ff.reset_counters()
        assert ff.fast_path_hits == 0
        assert ff.fast_path_misses == 0
        assert ff.nodes_visited == 0

    def test_registry_accumulates_across_emulations(self):
        from repro.obs import MetricsRegistry, set_metrics

        mine = MetricsRegistry()
        old = set_metrics(mine)
        try:
            ff = FastForwardEmulator(ZERO_OH)
            profile = balanced_loop(8)
            ff.emulate_profile(profile.tree, 2, Schedule.static())
            ff.emulate_profile(profile.tree, 4, Schedule.static())
            assert mine.counter_value("ff.emulations") == 2.0
            # Cumulative: two emulations x one fast-path hit each, even
            # though the instance attribute was reset in between.
            assert mine.counter_value("ff.fast_path.hits") == 2.0
            assert mine.counter_value("ff.nodes_visited") > 0.0
        finally:
            set_metrics(old)
