"""Tests for report dataclasses and formatting."""

import pytest

from repro.core.report import SpeedupEstimate, SpeedupReport, error_ratio


def est(method="syn", schedule="static", t=4, speedup=2.0, mem=False):
    return SpeedupEstimate(
        method=method,
        paradigm="omp",
        schedule=schedule,
        n_threads=t,
        speedup=speedup,
        with_memory_model=mem,
    )


class TestReport:
    def test_add_and_len(self):
        report = SpeedupReport()
        report.add(est())
        assert len(report) == 1

    def test_get_filters(self):
        report = SpeedupReport([est(t=2), est(t=4), est(method="ff", t=4)])
        assert len(report.get(n_threads=4)) == 2
        assert len(report.get(method="ff")) == 1
        assert len(report.get(method="syn", n_threads=2)) == 1

    def test_get_by_memory_model(self):
        report = SpeedupReport([est(mem=True), est(mem=False)])
        assert len(report.get(with_memory_model=True)) == 1

    def test_one_requires_unique(self):
        report = SpeedupReport([est(t=2), est(t=2)])
        with pytest.raises(KeyError):
            report.one(n_threads=2)

    def test_speedup_lookup(self):
        report = SpeedupReport([est(t=8, speedup=6.5)])
        assert report.speedup(n_threads=8) == 6.5

    def test_thread_counts_sorted(self):
        report = SpeedupReport([est(t=8), est(t=2), est(t=4)])
        assert report.thread_counts() == [2, 4, 8]

    def test_to_table_contains_rows(self):
        report = SpeedupReport(
            [est(t=2, speedup=1.9), est(t=4, speedup=3.7), est(method="ff", t=2)]
        )
        table = report.to_table()
        assert "2-core" in table and "4-core" in table
        assert "syn" in table and "ff" in table
        assert "3.70" in table

    def test_to_table_marks_memory_model(self):
        report = SpeedupReport([est(mem=True)])
        assert "syn+mem" in report.to_table()

    def test_extend_and_iter(self):
        report = SpeedupReport()
        report.extend([est(), est(t=8)])
        assert len(list(report)) == 2


class TestErrorRatio:
    def test_exact(self):
        assert error_ratio(2.0, 2.0) == 0.0

    def test_overestimate(self):
        assert error_ratio(3.0, 2.0) == pytest.approx(0.5)

    def test_underestimate(self):
        assert error_ratio(1.0, 2.0) == pytest.approx(0.5)

    def test_zero_real(self):
        assert error_ratio(0.0, 0.0) == 0.0
        assert error_ratio(1.0, 0.0) == float("inf")


class TestMarkdown:
    def test_to_markdown_layout(self):
        report = SpeedupReport(
            [est(t=2, speedup=1.9), est(t=4, speedup=3.7), est(method="ff", t=2)]
        )
        md = report.to_markdown()
        lines = md.splitlines()
        assert lines[0].startswith("| method |")
        assert "| 2-core | 4-core |" in lines[0]
        assert any("| syn |" in line and "3.70" in line for line in lines)
        assert any("| ff |" in line and " - " in line for line in lines)

    def test_markdown_memory_flag(self):
        md = SpeedupReport([est(mem=True)]).to_markdown()
        assert "syn+mem" in md


class TestFailureFootnote:
    """Both renderers must disclose attached sweep failures (the markdown
    renderer used to silently omit the footnote ``to_table`` printed, so a
    partial grid looked complete in saved reports)."""

    def _report_with_failures(self):
        from repro.core.batch import SweepTaskFailure

        report = SpeedupReport([est(t=2, speedup=1.9)])
        report.failures.append(
            SweepTaskFailure(
                workload="wl",
                schedule="static",
                n_threads=4,
                error="ConfigurationError",
                message="boom",
            )
        )
        return report

    def test_to_table_has_footnote(self):
        table = self._report_with_failures().to_table()
        assert "1 grid point(s) failed" in table
        assert "report.failures" in table

    def test_to_markdown_has_footnote(self):
        md = self._report_with_failures().to_markdown()
        assert "1 grid point(s) failed" in md
        assert "report.failures" in md

    def test_renderers_agree_on_clean_report(self):
        report = SpeedupReport([est(t=2)])
        assert "failed" not in report.to_table()
        assert "failed" not in report.to_markdown()
