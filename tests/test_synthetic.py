"""Tests for the Test1/Test2 validation generators (paper Figs. 9-10)."""

import numpy as np
import pytest

from repro.core.profiler import IntervalProfiler
from repro.core.tree import NodeKind
from repro.errors import ConfigurationError
from repro.simhw import MachineConfig
from repro.workloads.synthetic import (
    SHAPES,
    Test1Params,
    compute_overhead,
    random_test1,
    random_test2,
)
from repro.workloads.synthetic import test1_program as make_test1
from repro.workloads.synthetic import test2_program as make_test2

M = MachineConfig(n_cores=12)


def profile_of(program):
    return IntervalProfiler(M, compress=False).profile(program)


class TestComputeOverhead:
    def test_flat_constant(self):
        rng = np.random.default_rng(0)
        values = {
            compute_overhead(i, 10, 1000.0, 0.5, "flat", rng) for i in range(10)
        }
        assert values == {1000.0}

    def test_ramp_is_monotone(self):
        rng = np.random.default_rng(0)
        values = [
            compute_overhead(i, 10, 1000.0, 0.5, "ramp", rng) for i in range(10)
        ]
        assert values == sorted(values)
        assert values[0] == pytest.approx(500.0)
        assert values[-1] == pytest.approx(1500.0)

    def test_random_within_spread(self):
        rng = np.random.default_rng(0)
        for i in range(50):
            v = compute_overhead(i, 50, 1000.0, 0.3, "random", rng)
            assert 700.0 <= v <= 1300.0

    def test_sawtooth_periodic(self):
        rng = np.random.default_rng(0)
        a = compute_overhead(0, 100, 1000.0, 0.5, "sawtooth", rng)
        b = compute_overhead(8, 100, 1000.0, 0.5, "sawtooth", rng)
        assert a == pytest.approx(b)

    def test_floor_at_100_cycles(self):
        rng = np.random.default_rng(0)
        assert compute_overhead(0, 10, 50.0, 0.0, "flat", rng) == 100.0


class TestTest1:
    def make_params(self, **overrides):
        defaults = dict(
            i_max=10,
            mean_cycles=10_000.0,
            spread=0.5,
            shape="ramp",
            ratio_delay_1=0.3,
            ratio_delay_lock_1=0.2,
            ratio_delay_2=0.2,
            ratio_delay_lock_2=0.0,
            ratio_delay_3=0.3,
            do_lock1=True,
            do_lock2=False,
            seed=42,
        )
        defaults.update(overrides)
        return Test1Params(**defaults)

    def test_structure(self):
        profile = profile_of(make_test1(self.make_params()))
        sec = profile.tree.top_level_sections()[0]
        assert len(sec.children) == 10
        task = sec.children[0]
        kinds = [c.kind for c in task.children]
        assert kinds == [NodeKind.U, NodeKind.L, NodeKind.U]

    def test_two_locks(self):
        params = self.make_params(
            do_lock2=True, ratio_delay_lock_2=0.1
        )
        profile = profile_of(make_test1(params))
        task = profile.tree.top_level_sections()[0].children[0]
        lock_ids = [c.lock_id for c in task.children if c.kind is NodeKind.L]
        assert lock_ids == [1, 2]

    def test_no_locks(self):
        params = self.make_params(
            do_lock1=False, ratio_delay_lock_1=0.0
        )
        profile = profile_of(make_test1(params))
        task = profile.tree.top_level_sections()[0].children[0]
        assert all(c.kind is NodeKind.U for c in task.children)

    def test_deterministic_by_seed(self):
        p = self.make_params(shape="random")
        a = profile_of(make_test1(p)).serial_cycles()
        b = profile_of(make_test1(p)).serial_cycles()
        assert a == pytest.approx(b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make_params(i_max=0)
        with pytest.raises(ConfigurationError):
            self.make_params(shape="weird")
        with pytest.raises(ConfigurationError):
            self.make_params(
                ratio_delay_1=0.0,
                ratio_delay_2=0.0,
                ratio_delay_3=0.0,
                ratio_delay_lock_1=0.0,
                do_lock1=False,
            )


class TestTest2:
    def test_nested_structure(self):
        rng = np.random.default_rng(7)
        params = random_test2(rng)
        # Force nesting everywhere for the structural check.
        params = type(params)(
            **{**params.__dict__, "nested_probability": 1.0}
        )
        profile = profile_of(make_test2(params))
        outer = profile.tree.top_level_sections()[0]
        assert outer.name == "test2"
        task = outer.children[0]
        nested = [c for c in task.children if c.kind is NodeKind.SEC]
        assert len(nested) == 1

    def test_zero_probability_no_nesting(self):
        rng = np.random.default_rng(7)
        params = random_test2(rng)
        params = type(params)(
            **{**params.__dict__, "nested_probability": 0.0}
        )
        profile = profile_of(make_test2(params))
        for task in profile.tree.top_level_sections()[0].children:
            assert all(c.kind is not NodeKind.SEC for c in task.children)


class TestRandomSampling:
    def test_samples_valid_and_varied(self):
        rng = np.random.default_rng(123)
        shapes = set()
        for _ in range(30):
            params = random_test1(rng)
            shapes.add(params.shape)
            profile = profile_of(make_test1(params))
            assert profile.serial_cycles() > 0
        assert len(shapes) >= 3

    def test_test2_samples_profile_cleanly(self):
        rng = np.random.default_rng(321)
        for _ in range(5):
            params = random_test2(rng, scale=0.3)
            profile = profile_of(make_test2(params))
            assert profile.serial_cycles() > 0
            profile.tree.root.validate()

    def test_reproducible_streams(self):
        a = random_test1(np.random.default_rng(5))
        b = random_test1(np.random.default_rng(5))
        assert a == b

    def test_all_shapes_reachable(self):
        rng = np.random.default_rng(0)
        seen = {random_test1(rng).shape for _ in range(100)}
        assert seen == set(SHAPES)
