"""Tests for memory specs, analytic miss models, and their agreement with
the reference cache simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simhw import (
    AccessPattern,
    CacheConfig,
    MemSpec,
    SetAssociativeCache,
    analytic_llc_misses,
    generate_trace,
)
from repro.simhw.memtrace import scaled_spec

LLC = 1 << 20  # 1 MB for fast trace validation
LINE = 64


class TestMemSpec:
    def test_none_pattern_default(self):
        spec = MemSpec()
        assert spec.pattern is AccessPattern.NONE

    def test_working_set_defaults_to_bytes(self):
        spec = MemSpec(AccessPattern.STREAMING, bytes_touched=1000)
        assert spec.working_set == 1000

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            MemSpec(AccessPattern.STREAMING, bytes_touched=-1)

    def test_pattern_without_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            MemSpec(AccessPattern.STREAMING, bytes_touched=0)


class TestAnalyticMisses:
    def test_none_is_zero(self):
        assert analytic_llc_misses(MemSpec(), LLC, LINE) == 0.0

    def test_streaming_overflow(self):
        spec = MemSpec(AccessPattern.STREAMING, bytes_touched=4 * LLC)
        assert analytic_llc_misses(spec, LLC, LINE) == pytest.approx(4 * LLC / LINE)

    def test_streaming_fitting_only_cold(self):
        spec = MemSpec(
            AccessPattern.STREAMING, bytes_touched=8 * LLC, working_set=LLC // 2
        )
        # Working set fits: only the first pass misses.
        assert analytic_llc_misses(spec, LLC, LINE) == pytest.approx(LLC // 2 / LINE)

    def test_resident_cold_only(self):
        spec = MemSpec(
            AccessPattern.RESIDENT, bytes_touched=10 * LLC, working_set=LLC // 4
        )
        assert analytic_llc_misses(spec, LLC, LINE) == pytest.approx(LLC // 4 / LINE)

    def test_resident_oversized_degrades_to_streaming(self):
        spec = MemSpec(
            AccessPattern.RESIDENT, bytes_touched=4 * LLC, working_set=4 * LLC
        )
        assert analytic_llc_misses(spec, LLC, LINE) == pytest.approx(4 * LLC / LINE)

    def test_random_fully_resident(self):
        spec = MemSpec(
            AccessPattern.RANDOM, bytes_touched=16 * LLC, working_set=LLC // 2
        )
        misses = analytic_llc_misses(spec, LLC, LINE)
        # Once warm, everything hits: only cold misses remain.
        assert misses == pytest.approx(LLC // 2 / LINE, rel=0.01)

    def test_random_overflowing_misses_proportionally(self):
        spec = MemSpec(
            AccessPattern.RANDOM, bytes_touched=16 * LLC, working_set=4 * LLC
        )
        misses = analytic_llc_misses(spec, LLC, LINE)
        accesses = 16 * LLC / LINE
        # Hit probability ~ llc/ws = 1/4 -> ~3/4 miss, plus cold fills.
        assert misses == pytest.approx(0.75 * accesses, rel=0.1)

    def test_misses_monotone_in_working_set(self):
        prev = 0.0
        for ws in (LLC // 2, LLC, 2 * LLC, 8 * LLC):
            spec = MemSpec(
                AccessPattern.RANDOM, bytes_touched=8 * LLC, working_set=ws
            )
            misses = analytic_llc_misses(spec, LLC, LINE)
            assert misses >= prev
            prev = misses


class TestTraceAgreement:
    """The analytic models must agree with the reference simulator."""

    def _simulate(self, spec: MemSpec, seed: int = 7) -> float:
        rng = np.random.default_rng(seed)
        trace = generate_trace(spec, LINE, rng, max_accesses=200_000)
        cache = SetAssociativeCache(CacheConfig(LLC, LINE, 16))
        cache.access_block(trace)
        scale = (spec.bytes_touched / LINE) / max(1, len(trace))
        return cache.stats.misses * scale

    def test_streaming_agrees(self):
        spec = MemSpec(AccessPattern.STREAMING, bytes_touched=4 * LLC)
        analytic = analytic_llc_misses(spec, LLC, LINE)
        simulated = self._simulate(spec)
        assert simulated == pytest.approx(analytic, rel=0.05)

    def test_resident_agrees(self):
        spec = MemSpec(
            AccessPattern.RESIDENT, bytes_touched=4 * LLC, working_set=LLC // 2
        )
        analytic = analytic_llc_misses(spec, LLC, LINE)
        simulated = self._simulate(spec)
        assert simulated == pytest.approx(analytic, rel=0.05)

    def test_random_agrees_within_model_error(self):
        spec = MemSpec(
            AccessPattern.RANDOM, bytes_touched=8 * LLC, working_set=4 * LLC
        )
        analytic = analytic_llc_misses(spec, LLC, LINE)
        simulated = self._simulate(spec)
        assert simulated == pytest.approx(analytic, rel=0.15)


class TestGenerateTrace:
    def test_none_empty(self):
        rng = np.random.default_rng(0)
        assert generate_trace(MemSpec(), LINE, rng).size == 0

    def test_addresses_within_working_set(self):
        rng = np.random.default_rng(0)
        spec = MemSpec(AccessPattern.RANDOM, bytes_touched=LLC, working_set=LLC // 4)
        trace = generate_trace(spec, LINE, rng)
        assert trace.max() < LLC // 4
        assert trace.min() >= 0

    def test_base_address_offset(self):
        rng = np.random.default_rng(0)
        spec = MemSpec(AccessPattern.STREAMING, bytes_touched=1024)
        trace = generate_trace(spec, LINE, rng, base_address=1 << 30)
        assert trace.min() >= 1 << 30

    def test_max_accesses_bound(self):
        rng = np.random.default_rng(0)
        spec = MemSpec(AccessPattern.STREAMING, bytes_touched=100 * LLC)
        trace = generate_trace(spec, LINE, rng, max_accesses=1000)
        assert len(trace) == 1000


class TestScaledSpec:
    def test_scaling(self):
        spec = MemSpec(AccessPattern.STREAMING, bytes_touched=1000, working_set=2000)
        half = scaled_spec(spec, 0.5)
        assert half.bytes_touched == 500
        assert half.working_set == 2000

    def test_none_passthrough(self):
        assert scaled_spec(MemSpec(), 0.5).pattern is AccessPattern.NONE

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            scaled_spec(MemSpec(), 1.5)
