"""Tests for the learned surrogate prediction tier.

Covers the feature extraction contract, the ridge-ensemble model and its
canonical JSON artifact, training determinism (the acceptance criterion:
same seed + grid → byte-identical saved model), and the tier wiring —
``tier="surrogate" | "auto"`` on :meth:`ParallelProphet.predict` and
:class:`BatchPredictor`, with every ``auto`` answer within the surrogate
tolerance class of the exact pipeline it stands in for.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import ParallelProphet
from repro.core.batch import BatchPredictor, SweepTask
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, set_metrics
from repro.runtime.tasks import Schedule
from repro.simhw.machine import WESTMERE_12, MachineConfig
from repro.surrogate import (
    FEATURE_NAMES,
    RidgeEnsemble,
    Surrogate,
    base_features,
    extract,
    get_default_surrogate,
    machine_signature,
    set_default_surrogate,
)
from repro.surrogate.train import quick_config, train
from repro.validate import SURROGATE_TOLERANCE, verify_surrogate
from repro.workloads import get_workload


@pytest.fixture(autouse=True)
def fresh_metrics():
    registry = MetricsRegistry()
    set_metrics(registry)
    yield registry


@pytest.fixture(scope="module")
def quick_result():
    """One quick training run shared by the module (deterministic)."""
    return train(quick_config())


@pytest.fixture(scope="module")
def surrogate(quick_result):
    return quick_result.surrogate


@pytest.fixture(scope="module")
def prophet():
    return ParallelProphet(machine=WESTMERE_12)


@pytest.fixture(scope="module")
def ep_profile(prophet):
    return prophet.profile(get_workload("npb_ep", scale=0.05).program)


@pytest.fixture(autouse=True)
def _pin_default_surrogate(surrogate):
    """Tier tests must not depend on (or trigger) an in-process training
    run of the full default config; pin the quick model for the module."""
    set_default_surrogate(surrogate)
    yield
    set_default_surrogate(None)


class TestFeatures:
    def test_vector_matches_schema(self, ep_profile):
        x = np.asarray(
            extract(ep_profile, WESTMERE_12, "syn", "omp", "static", 4, True)
        )
        assert x.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(x))

    def test_deterministic(self, ep_profile):
        args = (ep_profile, WESTMERE_12, "ff", "omp", "static,4", 8, False)
        assert np.array_equal(extract(*args), extract(*args))

    def test_point_features_vary_with_grid_point(self, ep_profile):
        base = base_features(ep_profile, WESTMERE_12)
        a = extract(
            ep_profile, WESTMERE_12, "syn", "omp", "static", 2, True, base=base
        )
        b = extract(
            ep_profile, WESTMERE_12, "syn", "omp", "static", 8, True, base=base
        )
        assert not np.array_equal(a, b)

    def test_machine_signature_distinguishes_shapes(self):
        assert machine_signature(WESTMERE_12) != machine_signature(
            MachineConfig(n_cores=4)
        )


class TestRidgeEnsemble:
    def test_fit_predict_shapes_and_determinism(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(60, 5))
        y = X @ np.array([1.0, -2.0, 0.5, 0.0, 3.0]) + 0.1
        a = RidgeEnsemble(n_models=6, seed=3).fit(X, y)
        b = RidgeEnsemble(n_models=6, seed=3).fit(X, y)
        mean_a, spread_a = a.predict(X)
        mean_b, spread_b = b.predict(X)
        assert mean_a.shape == spread_a.shape == (60,)
        assert np.array_equal(mean_a, mean_b)
        assert np.array_equal(spread_a, spread_b)
        # A clean linear target is fit nearly exactly by the full-set member.
        assert float(np.abs(mean_a - y).max()) < 0.5

    def test_roundtrip_preserves_predictions(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))
        y = rng.normal(size=40)
        ens = RidgeEnsemble(n_models=4, seed=1).fit(X, y)
        clone = RidgeEnsemble.from_dict(ens.to_dict())
        assert np.array_equal(ens.predict(X)[0], clone.predict(X)[0])

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            RidgeEnsemble(n_models=0)
        with pytest.raises(ConfigurationError):
            RidgeEnsemble(ridge=0.0)
        with pytest.raises(ConfigurationError):
            RidgeEnsemble(subsample=0.0)
        with pytest.raises(ConfigurationError):
            RidgeEnsemble().predict(np.zeros((1, 2)))


class TestTrainingDeterminism:
    def test_same_seed_and_grid_is_byte_identical(self, quick_result):
        again = train(quick_config())
        assert again.surrogate.to_json() == quick_result.surrogate.to_json()

    def test_artifact_roundtrip(self, surrogate, tmp_path):
        path = tmp_path / "model.json"
        surrogate.save(path)
        loaded = Surrogate.load(path)
        assert loaded.to_json() == surrogate.to_json()
        # and the canonical form really is canonical
        assert json.loads(surrogate.to_json()) == surrogate.to_dict()

    def test_wrong_schema_rejected(self, surrogate):
        payload = surrogate.to_dict()
        payload["feature_names"] = ["bogus"]
        with pytest.raises(ConfigurationError, match="feature schema"):
            Surrogate.from_dict(payload)
        with pytest.raises(ConfigurationError, match="not a repro surrogate"):
            Surrogate.from_dict({"kind": "something-else"})

    def test_calibration_produces_confident_strata(self, quick_result):
        # The quick model must be useful, not just well-formed: a healthy
        # fraction of the validation slice answers confidently and stays
        # inside the training error budget.
        assert quick_result.validation_confident_frac > 0.2
        assert quick_result.validation_error_max <= 0.8 * SURROGATE_TOLERANCE


class TestAnswering:
    def test_unsupported_points_return_none(self, surrogate, ep_profile):
        machine = WESTMERE_12
        sched = Schedule.parse("static")
        assert surrogate.answer(
            ep_profile, machine, "real", "omp", sched, 4
        ) is None
        assert surrogate.answer(
            ep_profile, machine, "syn", "cilk", sched, 4
        ) is None
        other = MachineConfig(n_cores=6)
        assert surrogate.answer(
            ep_profile, other, "syn", "omp", sched, 4
        ) is None

    def test_answers_respect_invariant_caps(self, surrogate, ep_profile):
        for t in (2, 4, 8):
            for method in ("ff", "syn"):
                ans = surrogate.answer(
                    ep_profile, WESTMERE_12, method, "omp",
                    Schedule.parse("static"), t,
                )
                assert ans is not None
                cap = t if method == "ff" else min(t, WESTMERE_12.n_cores)
                assert 0.0 < ans.speedup <= cap + 1e-9


class TestTierWiring:
    def test_prophet_auto_tier_within_tolerance(self, prophet, ep_profile):
        threads = [2, 4, 8]
        exact = prophet.predict(
            ep_profile, threads=threads, methods=("ff", "syn"),
            schedules=["static"], memory_model=False,
        )
        auto = prophet.predict(
            ep_profile, threads=threads, methods=("ff", "syn"),
            schedules=["static"], memory_model=False, tier="auto",
        )
        assert len(auto.estimates) == len(exact.estimates)
        for e_exact, e_auto in zip(exact.estimates, auto.estimates):
            assert (e_exact.method, e_exact.n_threads) == (
                e_auto.method, e_auto.n_threads
            )
            ref = e_exact.speedup
            assert abs(e_auto.speedup - ref) / ref <= SURROGATE_TOLERANCE

    def test_prophet_tier_metrics_account_for_every_point(
        self, prophet, ep_profile, fresh_metrics
    ):
        threads = [2, 4, 8]
        prophet.predict(
            ep_profile, threads=threads, methods=("ff", "syn"),
            schedules=["static"], memory_model=False, tier="auto",
        )
        counters = fresh_metrics.counters(prefix="surrogate.")
        hits = counters.get("surrogate.hits", 0)
        abstains = counters.get("surrogate.abstains", 0)
        fallbacks = counters.get("surrogate.fallbacks", 0)
        # Every (method, t) point is either a surrogate hit or an exact
        # fallback, and every abstention is one of the fallbacks.
        assert hits + fallbacks == 2 * len(threads)
        assert abstains <= fallbacks

    def test_prophet_rejects_unknown_tier(self, prophet, ep_profile):
        with pytest.raises(ConfigurationError, match="tier"):
            prophet.predict(ep_profile, threads=[2], tier="bogus")

    def test_batch_tier_jobs_parity(self, prophet, ep_profile):
        profiles = {"ep": ep_profile}
        tasks = [
            SweepTask(
                workload="ep", schedule=s, n_threads=t,
                methods=("ff", "syn"), memory_model=False,
            )
            for s in ("static", "static,4")
            for t in (2, 4)
        ]
        serial = BatchPredictor(prophet, jobs=1).run(
            tasks, profiles, tier="auto"
        )
        pooled = BatchPredictor(prophet, jobs=2).run(
            tasks, profiles, tier="auto"
        )
        assert [
            [(e.method, e.n_threads, e.speedup) for e in out]
            for _t, out in serial
        ] == [
            [(e.method, e.n_threads, e.speedup) for e in out]
            for _t, out in pooled
        ]

    def test_verify_surrogate_confident_answers_hold(self, prophet, ep_profile):
        checked, abstained, mismatches = verify_surrogate(
            prophet,
            ep_profile,
            threads=[2, 4],
            schedules=["static"],
            memory_model=False,
        )
        assert checked + abstained == 4
        assert mismatches == []


class TestDefaultModel:
    def test_env_var_loads_pretrained_artifact(
        self, surrogate, tmp_path, monkeypatch
    ):
        from repro.surrogate import MODEL_ENV

        path = tmp_path / "model.json"
        surrogate.save(path)
        monkeypatch.setenv(MODEL_ENV, str(path))
        set_default_surrogate(None)
        try:
            loaded = get_default_surrogate()
            assert loaded.to_json() == surrogate.to_json()
        finally:
            set_default_surrogate(surrogate)
