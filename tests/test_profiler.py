"""Tests for the interval profiler and ProgramProfile."""

import pytest

from repro.core.profiler import IntervalProfiler
from repro.simhw import MachineConfig
from repro.simhw.memtrace import AccessPattern, MemSpec

M = MachineConfig(n_cores=4)


def simple_program(tr):
    tr.compute(500)
    with tr.section("loop"):
        for i in range(4):
            with tr.task():
                tr.compute(1000 * (i + 1))
    tr.compute(250)


def memory_program(tr):
    spec = MemSpec(AccessPattern.STREAMING, bytes_touched=64 * 50_000)
    with tr.section("hot"):
        for _ in range(4):
            with tr.task():
                tr.compute(10_000, mem=spec)


class TestProfile:
    def test_tree_and_serial_cycles(self):
        profile = IntervalProfiler(M).profile(simple_program)
        assert profile.serial_cycles() == pytest.approx(500 + 10_000 + 250)

    def test_sections_collected(self):
        profile = IntervalProfiler(M).profile(simple_program)
        assert set(profile.sections) == {"loop"}
        assert profile.sections["loop"].invocations == 1

    def test_section_counter_values(self):
        profile = IntervalProfiler(M).profile(memory_program)
        sc = profile.sections["hot"]
        assert sc.total.llc_misses == pytest.approx(4 * 50_000)
        assert sc.mpi > 0
        assert sc.traffic_mbs(M) > 0

    def test_compression_applied(self):
        profile = IntervalProfiler(M, compress=True).profile(memory_program)
        assert profile.compression is not None
        # Four identical tasks collapse.
        assert profile.tree.unique_nodes() <= 4

    def test_compression_disabled(self):
        profile = IntervalProfiler(M, compress=False).profile(memory_program)
        assert profile.compression is None
        assert profile.tree.unique_nodes() == 2 + 4 * 2

    def test_profiling_stats_slowdown(self):
        profile = IntervalProfiler(M).profile(simple_program)
        stats = profile.stats
        assert stats.slowdown >= 1.0
        assert stats.annotation_events == 2 + 4 * 2
        assert stats.gross_tracer_cycles > stats.net_program_cycles

    def test_repeated_section_invocations(self):
        def program(tr):
            for _ in range(5):
                with tr.section("rep"):
                    with tr.task():
                        tr.compute(100)

        profile = IntervalProfiler(M).profile(program)
        assert profile.sections["rep"].invocations == 5


class TestBurdenLookup:
    def test_default_burden_is_one(self):
        profile = IntervalProfiler(M).profile(simple_program)
        assert profile.burden_for("loop", 8) == 1.0

    def test_exact_lookup(self):
        profile = IntervalProfiler(M).profile(simple_program)
        profile.burdens["loop"] = {2: 1.1, 4: 1.3}
        assert profile.burden_for("loop", 4) == pytest.approx(1.3)

    def test_interpolation(self):
        profile = IntervalProfiler(M).profile(simple_program)
        profile.burdens["loop"] = {2: 1.0, 6: 2.0}
        assert profile.burden_for("loop", 4) == pytest.approx(1.5)

    def test_clamping_at_edges(self):
        profile = IntervalProfiler(M).profile(simple_program)
        profile.burdens["loop"] = {4: 1.5, 8: 2.0}
        assert profile.burden_for("loop", 2) == pytest.approx(1.5)
        assert profile.burden_for("loop", 16) == pytest.approx(2.0)

    def test_unknown_section(self):
        profile = IntervalProfiler(M).profile(simple_program)
        assert profile.burden_for("nope", 4) == 1.0
