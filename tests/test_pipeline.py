"""Tests for the pipeline-parallelism extension (paper Section VII-E)."""

import pytest

from repro.core.executor import ParallelExecutor, ReplayMode
from repro.core.pipeline import (
    expand_pipeline_tasks,
    ff_pipeline_cycles,
    partition_stages,
    stage_lengths,
)
from repro.core.profiler import IntervalProfiler
from repro.errors import AnnotationError, ConfigurationError, EmulationError
from repro.runtime import RuntimeOverheads, Schedule
from repro.simhw import MachineConfig

M = MachineConfig(n_cores=8)
ZERO_OH = RuntimeOverheads().scaled(0.0)


def pipeline_program(n_iters=16, stage_costs=(10_000, 30_000, 10_000)):
    def program(tr):
        with tr.section("pipe", pipeline=True):
            for _ in range(n_iters):
                with tr.task():
                    for cost in stage_costs:
                        with tr.stage():
                            tr.compute(cost)

    return program


def profile_of(program):
    return IntervalProfiler(M).profile(program)


class TestAnnotations:
    def test_pipeline_tree_structure(self):
        from repro.core.tree import NodeKind

        profile = profile_of(pipeline_program(4))
        sec = profile.tree.top_level_sections()[0]
        assert sec.pipeline is True
        task = sec.children[0]
        assert all(c.kind is NodeKind.STAGE for c in task.children)

    def test_stage_outside_pipeline_rejected(self):
        def program(tr):
            with tr.section("plain"):
                with tr.task():
                    tr.stage_begin()

        with pytest.raises(AnnotationError):
            profile_of(program)

    def test_stage_outside_task_rejected(self):
        def program(tr):
            with tr.section("pipe", pipeline=True):
                tr.stage_begin()

        with pytest.raises(AnnotationError):
            profile_of(program)

    def test_mixed_stage_and_plain_compute_rejected(self):
        def program(tr):
            with tr.section("pipe", pipeline=True):
                with tr.task():
                    tr.compute(100)  # plain leaf in a pipeline task
                    with tr.stage():
                        tr.compute(100)

        with pytest.raises(ConfigurationError):
            profile_of(program)

    def test_mismatched_stage_counts_rejected(self):
        def program(tr):
            with tr.section("pipe", pipeline=True):
                with tr.task():
                    with tr.stage():
                        tr.compute(100)
                with tr.task():
                    with tr.stage():
                        tr.compute(100)
                    with tr.stage():
                        tr.compute(100)

        with pytest.raises(ConfigurationError):
            profile_of(program)

    def test_lock_inside_stage(self):
        def program(tr):
            with tr.section("pipe", pipeline=True):
                for _ in range(2):
                    with tr.task():
                        with tr.stage():
                            tr.compute(100)
                            with tr.lock(1):
                                tr.compute(50)

        profile = profile_of(program)
        assert profile.tree.serial_cycles() == pytest.approx(300.0)


class TestPartitioning:
    def test_balanced_split(self):
        groups = partition_stages([1.0, 1.0, 1.0, 1.0], 2)
        assert groups == [[0, 1], [2, 3]]

    def test_dominant_stage_isolated(self):
        groups = partition_stages([1.0, 10.0, 1.0], 3)
        assert [10.0] == [sum([1.0, 10.0, 1.0][i] for i in g) for g in groups][1:2]
        assert len(groups) <= 3

    def test_more_threads_than_stages(self):
        groups = partition_stages([1.0, 2.0], 8)
        assert groups == [[0], [1]]

    def test_single_thread(self):
        groups = partition_stages([3.0, 1.0, 2.0], 1)
        assert groups == [[0, 1, 2]]

    def test_partition_covers_all_stages(self):
        loads = [2.0, 5.0, 1.0, 4.0, 3.0, 2.0]
        for t in (1, 2, 3, 4, 6, 9):
            groups = partition_stages(loads, t)
            flat = [i for g in groups for i in g]
            assert flat == list(range(len(loads)))

    def test_optimality_on_known_case(self):
        # [4,2,2,4] into 2: best max load is 6 ([4,2][2,4]).
        groups = partition_stages([4.0, 2.0, 2.0, 4.0], 2)
        loads = [sum([4.0, 2.0, 2.0, 4.0][i] for i in g) for g in groups]
        assert max(loads) == pytest.approx(6.0)

    def test_empty(self):
        assert partition_stages([], 4) == []


class TestAnalyticalEmulation:
    def test_single_thread_is_serial(self):
        profile = profile_of(pipeline_program(8))
        sec = profile.tree.top_level_sections()[0]
        cycles = ff_pipeline_cycles(sec, 1, overheads=ZERO_OH)
        assert cycles == pytest.approx(profile.serial_cycles(), rel=0.01)

    def test_throughput_bounded_by_longest_stage(self):
        n = 32
        profile = profile_of(pipeline_program(n, (10_000, 30_000, 10_000)))
        sec = profile.tree.top_level_sections()[0]
        cycles = ff_pipeline_cycles(sec, 8, overheads=ZERO_OH)
        # Steady state: one iteration per 30k cycles (the bottleneck stage).
        assert cycles >= n * 30_000
        assert cycles <= n * 30_000 + 50_000 + 1  # fill/drain slack

    def test_speedup_capped_by_stage_count(self):
        profile = profile_of(pipeline_program(64, (10_000, 10_000, 10_000)))
        sec = profile.tree.top_level_sections()[0]
        serial = profile.serial_cycles()
        cycles = ff_pipeline_cycles(sec, 8, overheads=ZERO_OH)
        speedup = serial / cycles
        assert speedup <= 3.0 + 1e-9
        assert speedup > 2.5  # long stream approaches the stage count

    def test_burden_scales(self):
        profile = profile_of(pipeline_program(16))
        sec = profile.tree.top_level_sections()[0]
        a = ff_pipeline_cycles(sec, 4, burden=1.0, overheads=ZERO_OH)
        b = ff_pipeline_cycles(sec, 4, burden=2.0, overheads=ZERO_OH)
        assert b == pytest.approx(2 * a, rel=0.01)

    def test_non_pipeline_rejected(self):
        from repro.core.tree import Node, NodeKind

        with pytest.raises(EmulationError):
            expand_pipeline_tasks(Node(NodeKind.SEC))


class TestReplayAgreement:
    def test_ff_matches_replay(self):
        profile = profile_of(pipeline_program(24, (15_000, 40_000, 20_000)))
        sec = profile.tree.top_level_sections()[0]
        ff = ff_pipeline_cycles(sec, 4, overheads=ZERO_OH)
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        run = ex.execute_section(sec, 4, ReplayMode.REAL)
        assert run.gross_cycles == pytest.approx(ff, rel=0.03)

    def test_fake_replay_matches_real_for_pure_compute(self):
        profile = profile_of(pipeline_program(16))
        sec = profile.tree.top_level_sections()[0]
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        real = ex.execute_section(sec, 4, ReplayMode.REAL)
        fake = ex.execute_section(sec, 4, ReplayMode.FAKE)
        assert fake.gross_cycles == pytest.approx(real.gross_cycles, rel=0.02)

    def test_full_profile_prediction(self):
        from repro import ParallelProphet

        prophet = ParallelProphet(machine=M, overheads=ZERO_OH)
        profile = prophet.profile(pipeline_program(32, (20_000, 20_000, 20_000)))
        report = prophet.predict(
            profile, threads=[1, 4], methods=("ff", "syn"), memory_model=False
        )
        real = prophet.measure_real(profile, [4])
        r = real.speedup(n_threads=4)
        assert r > 2.5  # pipeline parallelism materialises
        for method in ("ff", "syn"):
            p = report.speedup(method=method, n_threads=4)
            assert p == pytest.approx(r, rel=0.05), method

    def test_imbalanced_pipeline_limited_by_bottleneck(self):
        from repro import ParallelProphet

        prophet = ParallelProphet(machine=M, overheads=ZERO_OH)
        profile = prophet.profile(pipeline_program(32, (5_000, 50_000, 5_000)))
        real = prophet.measure_real(profile, [8])
        # Serial per iter = 60k; pipelined ~50k/iter -> speedup ~1.2.
        assert real.speedup(n_threads=8) == pytest.approx(1.2, rel=0.05)

    def test_stage_lock_serializes_across_iterations(self):
        def program(tr):
            with tr.section("pipe", pipeline=True):
                for _ in range(8):
                    with tr.task():
                        with tr.stage():
                            tr.compute(1_000)
                        with tr.stage():
                            with tr.lock(1):
                                tr.compute(10_000)

        profile = profile_of(program)
        ex = ParallelExecutor(M, overheads=ZERO_OH)
        sec = profile.tree.top_level_sections()[0]
        run = ex.execute_section(sec, 8, ReplayMode.REAL)
        # The locked stage serialises: at least 8 x 10k.
        assert run.gross_cycles >= 8 * 10_000


class TestStageLengths:
    def test_matrix_shape(self):
        profile = profile_of(pipeline_program(5, (100, 200)))
        sec = profile.tree.top_level_sections()[0]
        lengths = stage_lengths(expand_pipeline_tasks(sec))
        assert lengths.shape == (5, 2)
        assert lengths[0, 1] == pytest.approx(200.0)


class TestPipelineProperties:
    """Property-based checks of the pipeline recurrence and partitioner."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.lists(
            st.lists(
                st.floats(min_value=100.0, max_value=50_000.0),
                min_size=2,
                max_size=5,
            ),
            min_size=1,
            max_size=12,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_recurrence_respects_laws(self, rows, t):
        """Pipeline makespan obeys: span law (>= longest iteration chain /
        nothing parallelizes within an iteration's cluster sequence),
        work law (>= total/t), and serial bound (<= serial total)."""
        from repro.core.tree import Node, NodeKind

        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC, name="p"))
        sec.pipeline = True
        for costs in rows:
            task = sec.add(Node(NodeKind.TASK))
            for c in costs:
                stage = task.add(Node(NodeKind.STAGE))
                stage.add(Node(NodeKind.U, length=c))
        cycles = ff_pipeline_cycles(sec, t, overheads=ZERO_OH)
        total = sum(sum(r) for r in rows)
        longest_iteration = max(sum(r) for r in rows)
        per_stage_totals = [
            sum(r[s] for r in rows) for s in range(len(rows[0]))
        ]
        assert cycles <= total + 1e-6  # never slower than serial
        assert cycles >= total / t - 1e-6  # work law
        assert cycles >= longest_iteration - 1e-6  # one iteration's chain
        # Throughput law: at least the busiest stage's total work.
        assert cycles >= max(per_stage_totals) / max(1, t) - 1e-6

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=9
        ),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_is_optimal(self, loads, t):
        """DP result equals brute-force optimal max-cluster-load over all
        contiguous partitions into <= t groups."""
        import itertools

        groups = partition_stages(loads, t)
        got = max(sum(loads[i] for i in g) for g in groups)

        s = len(loads)
        best = float("inf")
        k = min(t, s)
        for n_groups in range(1, k + 1):
            for cuts in itertools.combinations(range(1, s), n_groups - 1):
                bounds = [0, *cuts, s]
                load = max(
                    sum(loads[bounds[i] : bounds[i + 1]])
                    for i in range(n_groups)
                )
                best = min(best, load)
        assert got == pytest.approx(best, rel=1e-9)
