"""Tests for the self-consistent DRAM contention model."""

import pytest

from repro.errors import ConfigurationError
from repro.simhw import DramModel, MachineConfig, SegmentDemand


@pytest.fixture
def model() -> DramModel:
    return DramModel(MachineConfig(n_cores=12, dram_peak_gbs=12.0))


def _streaming_segment(machine: MachineConfig) -> SegmentDemand:
    """A fully memory-bound segment demanding line_size·freq/ω₀ bytes/s."""
    demand = machine.line_size * machine.freq_hz / machine.base_miss_stall
    return SegmentDemand(mem_fraction=1.0, demand_bytes_per_sec=demand)


class TestSegmentDemand:
    def test_mem_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            SegmentDemand(mem_fraction=1.5, demand_bytes_per_sec=0.0)
        with pytest.raises(ConfigurationError):
            SegmentDemand(mem_fraction=-0.1, demand_bytes_per_sec=0.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentDemand(mem_fraction=0.5, demand_bytes_per_sec=-1.0)


class TestScalarCurves:
    def test_queue_factor_is_one_at_zero(self, model):
        assert model.queue_factor(0.0) == 1.0

    def test_queue_factor_monotone_below_saturation(self, model):
        values = [model.queue_factor(u) for u in (0.1, 0.3, 0.5, 0.8, 1.0)]
        assert values == sorted(values)

    def test_queue_factor_clamps_past_saturation(self, model):
        assert model.queue_factor(5.0) == model.queue_factor(1.0)

    def test_utilisation(self, model):
        assert model.utilisation(6.0e9) == pytest.approx(0.5)


class TestStallMultiplier:
    def test_empty_set(self, model):
        assert model.stall_multiplier([]) == 1.0
        assert model.slowdowns([]) == []

    def test_pure_compute_segment_unaffected(self, model):
        seg = SegmentDemand(mem_fraction=0.0, demand_bytes_per_sec=0.0)
        assert model.slowdowns([seg]) == [1.0]

    def test_single_light_segment_near_one(self, model):
        seg = SegmentDemand(mem_fraction=0.2, demand_bytes_per_sec=1e9)
        (s,) = model.slowdowns([seg])
        assert 1.0 <= s < 1.05

    def test_slowdowns_at_least_one(self, model):
        segs = [
            SegmentDemand(mem_fraction=f, demand_bytes_per_sec=d)
            for f, d in [(0.1, 1e9), (0.9, 5e9), (0.5, 3e9)]
        ]
        assert all(s >= 1.0 for s in model.slowdowns(segs))

    def test_more_segments_more_slowdown(self, model):
        machine = model.config
        seg = _streaming_segment(machine)
        results = []
        for n in (1, 2, 4, 8):
            results.append(model.slowdowns([seg] * n)[0])
        assert results == sorted(results)
        assert results[-1] > results[0]

    def test_aggregate_bandwidth_capped_at_peak(self, model):
        machine = model.config
        seg = _streaming_segment(machine)
        for n in (1, 2, 4, 8, 16):
            achieved = model.aggregate_achieved_bandwidth([seg] * n)
            assert achieved <= machine.dram_peak_bytes_per_sec * (1 + 1e-9)

    def test_cap_holds_for_compute_diluted_segments(self, model):
        """The historical bug: compute-diluted segments must not push the
        aggregate over peak bandwidth."""
        seg = SegmentDemand(mem_fraction=0.45, demand_bytes_per_sec=2.7e9)
        achieved = model.aggregate_achieved_bandwidth([seg] * 12)
        assert achieved <= model.config.dram_peak_bytes_per_sec * (1 + 1e-9)
        # And the demand genuinely exceeded peak.
        assert 12 * seg.demand_bytes_per_sec > model.config.dram_peak_bytes_per_sec

    def test_saturated_solve_is_exact(self, model):
        seg = _streaming_segment(model.config)
        achieved = model.aggregate_achieved_bandwidth([seg] * 8)
        assert achieved == pytest.approx(
            model.config.dram_peak_bytes_per_sec, rel=1e-6
        )

    def test_heterogeneous_segments(self, model):
        light = SegmentDemand(mem_fraction=0.1, demand_bytes_per_sec=0.5e9)
        heavy = _streaming_segment(model.config)
        s_light, s_heavy = model.slowdowns([light, heavy])
        # The heavier segment suffers more in absolute slowdown.
        assert s_heavy > s_light >= 1.0

    def test_effective_miss_stall_grows_under_contention(self, model):
        seg = _streaming_segment(model.config)
        alone = model.effective_miss_stall([seg])
        crowded = model.effective_miss_stall([seg] * 8)
        assert crowded > alone
        assert alone >= model.config.base_miss_stall
