"""Tests for the self-consistent DRAM contention model."""

import pytest

from repro.errors import ConfigurationError
from repro.simhw import DramModel, MachineConfig, SegmentDemand


@pytest.fixture
def model() -> DramModel:
    return DramModel(MachineConfig(n_cores=12, dram_peak_gbs=12.0))


def _streaming_segment(machine: MachineConfig) -> SegmentDemand:
    """A fully memory-bound segment demanding line_size·freq/ω₀ bytes/s."""
    demand = machine.line_size * machine.freq_hz / machine.base_miss_stall
    return SegmentDemand(mem_fraction=1.0, demand_bytes_per_sec=demand)


class TestSegmentDemand:
    def test_mem_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            SegmentDemand(mem_fraction=1.5, demand_bytes_per_sec=0.0)
        with pytest.raises(ConfigurationError):
            SegmentDemand(mem_fraction=-0.1, demand_bytes_per_sec=0.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentDemand(mem_fraction=0.5, demand_bytes_per_sec=-1.0)


class TestScalarCurves:
    def test_queue_factor_is_one_at_zero(self, model):
        assert model.queue_factor(0.0) == 1.0

    def test_queue_factor_monotone_below_saturation(self, model):
        values = [model.queue_factor(u) for u in (0.1, 0.3, 0.5, 0.8, 1.0)]
        assert values == sorted(values)

    def test_queue_factor_clamps_past_saturation(self, model):
        assert model.queue_factor(5.0) == model.queue_factor(1.0)

    def test_utilisation(self, model):
        assert model.utilisation(6.0e9) == pytest.approx(0.5)


class TestStallMultiplier:
    def test_empty_set(self, model):
        assert model.stall_multiplier([]) == 1.0
        assert model.slowdowns([]) == []

    def test_pure_compute_segment_unaffected(self, model):
        seg = SegmentDemand(mem_fraction=0.0, demand_bytes_per_sec=0.0)
        assert model.slowdowns([seg]) == [1.0]

    def test_single_light_segment_near_one(self, model):
        seg = SegmentDemand(mem_fraction=0.2, demand_bytes_per_sec=1e9)
        (s,) = model.slowdowns([seg])
        assert 1.0 <= s < 1.05

    def test_slowdowns_at_least_one(self, model):
        segs = [
            SegmentDemand(mem_fraction=f, demand_bytes_per_sec=d)
            for f, d in [(0.1, 1e9), (0.9, 5e9), (0.5, 3e9)]
        ]
        assert all(s >= 1.0 for s in model.slowdowns(segs))

    def test_more_segments_more_slowdown(self, model):
        machine = model.config
        seg = _streaming_segment(machine)
        results = []
        for n in (1, 2, 4, 8):
            results.append(model.slowdowns([seg] * n)[0])
        assert results == sorted(results)
        assert results[-1] > results[0]

    def test_aggregate_bandwidth_capped_at_peak(self, model):
        machine = model.config
        seg = _streaming_segment(machine)
        for n in (1, 2, 4, 8, 16):
            achieved = model.aggregate_achieved_bandwidth([seg] * n)
            assert achieved <= machine.dram_peak_bytes_per_sec * (1 + 1e-9)

    def test_cap_holds_for_compute_diluted_segments(self, model):
        """The historical bug: compute-diluted segments must not push the
        aggregate over peak bandwidth."""
        seg = SegmentDemand(mem_fraction=0.45, demand_bytes_per_sec=2.7e9)
        achieved = model.aggregate_achieved_bandwidth([seg] * 12)
        assert achieved <= model.config.dram_peak_bytes_per_sec * (1 + 1e-9)
        # And the demand genuinely exceeded peak.
        assert 12 * seg.demand_bytes_per_sec > model.config.dram_peak_bytes_per_sec

    def test_saturated_solve_is_exact(self, model):
        seg = _streaming_segment(model.config)
        achieved = model.aggregate_achieved_bandwidth([seg] * 8)
        assert achieved == pytest.approx(
            model.config.dram_peak_bytes_per_sec, rel=1e-6
        )

    def test_heterogeneous_segments(self, model):
        light = SegmentDemand(mem_fraction=0.1, demand_bytes_per_sec=0.5e9)
        heavy = _streaming_segment(model.config)
        s_light, s_heavy = model.slowdowns([light, heavy])
        # The heavier segment suffers more in absolute slowdown.
        assert s_heavy > s_light >= 1.0

    def test_effective_miss_stall_grows_under_contention(self, model):
        seg = _streaming_segment(model.config)
        alone = model.effective_miss_stall([seg])
        crowded = model.effective_miss_stall([seg] * 8)
        assert crowded > alone
        assert alone >= model.config.base_miss_stall


class TestSolveMemoization:
    def test_cached_matches_uncached(self):
        """Cached and cache-free models agree on randomized segment sets.

        The warm-started bisection bracket makes results weakly
        history-dependent, so the comparison is to solver tolerance, not
        bit-exact."""
        import random

        rng = random.Random(2012)
        cached = DramModel(MachineConfig(n_cores=12, dram_peak_gbs=12.0))
        plain = DramModel(
            MachineConfig(n_cores=12, dram_peak_gbs=12.0), cache_size=0
        )
        for _ in range(40):
            segs = [
                SegmentDemand(
                    mem_fraction=rng.uniform(0.05, 1.0),
                    demand_bytes_per_sec=rng.uniform(0.1e9, 4.0e9),
                )
                for _ in range(rng.randint(1, 12))
            ]
            # Hit each set twice so the second call exercises the cache.
            a1 = cached.stall_multiplier(segs)
            a2 = cached.stall_multiplier(segs)
            assert a1 == a2
            assert a1 == pytest.approx(plain.stall_multiplier(segs), rel=1e-6)
        assert cached.cache_hits >= 40

    def test_order_insensitive_key(self, model):
        segs = [
            SegmentDemand(mem_fraction=0.2 + 0.1 * i, demand_bytes_per_sec=1e9 * i)
            for i in range(1, 5)
        ]
        model.stall_multiplier(segs)
        model.stall_multiplier(list(reversed(segs)))
        assert model.cache_hits == 1 and model.cache_misses == 1

    def test_cache_bound_enforced(self):
        model = DramModel(
            MachineConfig(n_cores=12, dram_peak_gbs=12.0), cache_size=8
        )
        for i in range(1, 40):
            seg = SegmentDemand(mem_fraction=0.5, demand_bytes_per_sec=1e8 * i)
            model.stall_multiplier([seg])
        info = model.cache_info()
        assert info["size"] <= info["maxsize"] == 8
        assert info["misses"] == 39

    def test_cache_disabled(self):
        model = DramModel(
            MachineConfig(n_cores=12, dram_peak_gbs=12.0), cache_size=0
        )
        seg = SegmentDemand(mem_fraction=0.8, demand_bytes_per_sec=3e9)
        model.stall_multiplier([seg])
        model.stall_multiplier([seg])
        info = model.cache_info()
        assert info == {"hits": 0, "misses": 2, "size": 0, "maxsize": 0}

    def test_machine_knob_disables_cache(self):
        model = DramModel(
            MachineConfig(n_cores=12, dram_peak_gbs=12.0, dram_solve_cache=0)
        )
        seg = SegmentDemand(mem_fraction=0.8, demand_bytes_per_sec=3e9)
        model.stall_multiplier([seg])
        model.stall_multiplier([seg])
        assert model.cache_info()["hits"] == 0

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(n_cores=12, dram_solve_cache=-1)

    def test_clear_cache(self, model):
        seg = SegmentDemand(mem_fraction=0.8, demand_bytes_per_sec=3e9)
        model.stall_multiplier([seg])
        assert model.cache_info()["size"] == 1
        model.clear_cache()
        assert model.cache_info() == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "maxsize": model.cache_info()["maxsize"],
        }

    def test_bandwidth_cap_invariant_with_cache(self, model):
        """The paper's physical invariant survives memoized solves."""
        import random

        rng = random.Random(7)
        peak = model.config.dram_peak_bytes_per_sec
        for _ in range(20):
            segs = [
                _streaming_segment(model.config)
                if rng.random() < 0.3
                else SegmentDemand(
                    mem_fraction=rng.uniform(0.1, 0.9),
                    demand_bytes_per_sec=rng.uniform(0.5e9, 3.5e9),
                )
                for _ in range(rng.randint(1, 16))
            ]
            for _ in range(2):  # second pass hits the cache
                assert model.aggregate_achieved_bandwidth(segs) <= peak * (
                    1 + 1e-6
                )
