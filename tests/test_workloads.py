"""Tests for the OmpSCR/NPB workload suite."""

import pytest

from repro.core.profiler import IntervalProfiler
from repro.core.tree import NodeKind
from repro.errors import ConfigurationError
from repro.simhw import MachineConfig
from repro.workloads import PAPER_ORDER, get_workload, workload_names
from repro.workloads.base import WorkloadSpec, bytes_for_mem_fraction

M = MachineConfig(n_cores=12)

#: Small scales so each workload profiles in well under a second.
TEST_SCALE = {
    "ompscr_md": dict(particles=64, steps=1),
    "ompscr_lu": dict(size=24),
    "ompscr_fft": dict(n_points=1024),
    "ompscr_qsort": dict(elements=40_000),
    "npb_ep": dict(batches=16),
    "npb_ft": dict(planes=8, timesteps=1),
    "npb_mg": dict(fine_planes=8, cycles_count=1),
    "npb_cg": dict(outer_steps=1, inner_iterations=2, row_blocks=8),
}


def small(name) -> WorkloadSpec:
    return get_workload(name, **TEST_SCALE[name])


class TestRegistry:
    def test_all_eight_registered(self):
        assert len(workload_names()) == 8
        assert set(workload_names()) == set(PAPER_ORDER)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_workload("npb_dt")

    def test_kwargs_passed_through(self):
        wl = get_workload("npb_ep", batches=4)
        profile = IntervalProfiler(M).profile(wl.program)
        sec = profile.tree.top_level_sections()[0]
        assert len(sec.children) <= 4  # compression may merge them


@pytest.mark.parametrize("name", PAPER_ORDER)
class TestEveryWorkload:
    def test_profiles_cleanly(self, name):
        wl = small(name)
        profile = IntervalProfiler(M).profile(wl.program)
        assert profile.serial_cycles() > 0
        profile.tree.root.validate()

    def test_has_parallel_sections(self, name):
        wl = small(name)
        profile = IntervalProfiler(M).profile(wl.program)
        assert len(profile.tree.top_level_sections()) >= 1
        assert len(profile.sections) >= 1

    def test_paradigm_valid(self, name):
        wl = small(name)
        assert wl.paradigm in ("omp", "cilk")

    def test_metadata(self, name):
        wl = small(name)
        assert wl.name == name
        assert wl.description
        assert wl.input_label


class TestWorkloadCharacter:
    def test_lu_is_imbalanced(self):
        wl = small("ompscr_lu")
        profile = IntervalProfiler(M, compress=False).profile(wl.program)
        sections = profile.tree.top_level_sections()
        # One section per outer k, shrinking trip counts (the diagonal).
        assert len(sections) == 23
        sizes = [len(s.children) for s in sections]
        assert sizes == sorted(sizes, reverse=True)

    def test_fft_has_nested_sections(self):
        wl = small("ompscr_fft")
        profile = IntervalProfiler(M).profile(wl.program)

        def depth(node, d=0):
            here = d + (1 if node.kind is NodeKind.SEC else 0)
            return max([here] + [depth(c, here) for c in node.children])

        assert depth(profile.tree.root) >= 3  # recursion nests sections

    def test_qsort_imbalance_is_seeded(self):
        a = IntervalProfiler(M).profile(small("ompscr_qsort").program)
        b = IntervalProfiler(M).profile(small("ompscr_qsort").program)
        assert a.serial_cycles() == pytest.approx(b.serial_cycles())

    def test_ft_is_memory_heavy(self):
        wl = small("npb_ft")
        profile = IntervalProfiler(M).profile(wl.program)
        for sc in profile.sections.values():
            assert sc.traffic_mbs(M) > 2000.0

    def test_ep_is_memory_light(self):
        wl = small("npb_ep")
        profile = IntervalProfiler(M).profile(wl.program)
        sc = profile.sections["ep_batches"]
        assert sc.mpi < 0.001

    def test_ep_has_lock_nodes(self):
        wl = small("npb_ep")
        profile = IntervalProfiler(M).profile(wl.program)
        has_lock = any(
            n.kind is NodeKind.L for n in profile.tree.root.walk()
        )
        assert has_lock

    def test_cg_tree_compresses_like_paper(self):
        """Section VI-B: CG's repetitive iteration structure compresses by
        >90 % (the paper reports 93 %)."""
        wl = get_workload("npb_cg", outer_steps=2, inner_iterations=3, row_blocks=32)
        profile = IntervalProfiler(M, compress=True).profile(wl.program)
        assert profile.compression is not None
        assert profile.compression.reduction > 0.9

    def test_mg_levels_shrink(self):
        wl = small("npb_mg")
        profile = IntervalProfiler(M, compress=False).profile(wl.program)
        names = [s.name for s in profile.tree.top_level_sections()]
        assert any("l0" in n for n in names)
        assert any("l4" in n for n in names)


class TestHelpers:
    def test_bytes_for_mem_fraction_roundtrip(self):
        cpu = 1_000_000.0
        target = 0.45
        nbytes = bytes_for_mem_fraction(cpu, target, M)
        misses = nbytes / M.line_size
        base = cpu + misses * M.base_miss_stall
        assert misses * M.base_miss_stall / base == pytest.approx(target)

    def test_zero_fraction(self):
        assert bytes_for_mem_fraction(1000, 0.0, M) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            bytes_for_mem_fraction(1000, 1.0, M)

    def test_spec_paradigm_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                name="x",
                program=lambda tr: None,
                paradigm="mpi",
                description="",
                input_label="",
                footprint_mb=1.0,
            )


class TestNpbIs:
    """The Section VI-B compression pathology workload (extra, not in the
    paper's Fig. 12 evaluation)."""

    def test_registered_as_extra(self):
        assert "npb_is" not in workload_names()
        assert "npb_is" in workload_names(include_extras=True)

    def test_profiles_cleanly(self):
        wl = get_workload("npb_is", iterations=1, buckets=32)
        profile = IntervalProfiler(M).profile(wl.program)
        assert profile.serial_cycles() > 0
        profile.tree.root.validate()

    def test_resists_lossless_compression(self):
        wl = get_workload("npb_is", iterations=2, buckets=128)
        profile = IntervalProfiler(M, compress=True).profile(wl.program)
        assert profile.compression.reduction < 0.30

    def test_lossy_rescues_it(self):
        from repro.core.compress import compress_tree_lossy

        wl = get_workload("npb_is", iterations=2, buckets=128)
        profile = IntervalProfiler(M, compress=False).profile(wl.program)
        stats = compress_tree_lossy(profile.tree, lossy_tolerance=0.20)
        assert stats.reduction > 0.60

    def test_deterministic(self):
        a = IntervalProfiler(M).profile(get_workload("npb_is").program)
        b = IntervalProfiler(M).profile(get_workload("npb_is").program)
        assert a.serial_cycles() == pytest.approx(b.serial_cycles())


class TestNpbStructure:
    """The NPB workloads mirror the real kernels' phase structure."""

    def test_mg_vcycle_operators(self):
        wl = get_workload("npb_mg", fine_planes=8, cycles_count=1)
        profile = IntervalProfiler(M, compress=False).profile(wl.program)
        names = [s.name for s in profile.tree.top_level_sections()]
        # V-cycle: resid at the top, rprj3 down, interp/psinv up.
        assert names[0] == "mg_resid_l0"
        assert "mg_rprj3_l1" in names
        assert "mg_interp_l0" in names and "mg_psinv_l0" in names
        # Downward leg precedes upward leg.
        assert names.index("mg_rprj3_l4") < names.index("mg_interp_l3")

    def test_mg_fine_levels_carry_the_work(self):
        """Traffic *rate* is intensity-bound and similar across levels; what
        makes coarse levels overhead-bound is their tiny total work."""
        wl = get_workload("npb_mg", fine_planes=8, cycles_count=1)
        profile = IntervalProfiler(M).profile(wl.program)
        fine = profile.sections["mg_resid_l0"].total
        coarse = profile.sections["mg_rprj3_l4"].total
        assert fine.llc_misses > 100 * coarse.llc_misses
        assert fine.cycles > 100 * coarse.cycles

    def test_cg_iteration_phases(self):
        wl = get_workload(
            "npb_cg", outer_steps=1, inner_iterations=1, row_blocks=8
        )
        profile = IntervalProfiler(M, compress=False).profile(wl.program)
        names = [s.name for s in profile.tree.top_level_sections()]
        # One CG iteration: matvec, dot, axpy, dot, axpy.
        assert names == ["cg_matvec", "cg_dot", "cg_axpy", "cg_dot", "cg_axpy"]

    def test_cg_matvec_dominates(self):
        wl = get_workload(
            "npb_cg", outer_steps=1, inner_iterations=2, row_blocks=8
        )
        profile = IntervalProfiler(M).profile(wl.program)
        matvec = sum(
            s.subtree_length()
            for s in profile.tree.top_level_sections()
            if s.name == "cg_matvec"
        )
        assert matvec > 0.5 * profile.tree.serial_cycles()

    def test_cg_dot_has_reduction_lock(self):
        wl = get_workload(
            "npb_cg", outer_steps=1, inner_iterations=1, row_blocks=4
        )
        profile = IntervalProfiler(M, compress=False).profile(wl.program)
        dot = next(
            s for s in profile.tree.top_level_sections() if s.name == "cg_dot"
        )
        assert any(
            c.kind is NodeKind.L for t in dot.children for c in t.children
        )
