"""Tests for runtime overhead constants and EPCC-style measurement."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import RuntimeOverheads, measure_overheads
from repro.runtime.overhead import DEFAULT_OVERHEADS
from repro.simhw import MachineConfig


class TestRuntimeOverheads:
    def test_defaults_positive(self):
        oh = RuntimeOverheads()
        assert oh.omp_fork_base > 0
        assert oh.omp_dynamic_dispatch > oh.omp_static_dispatch

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeOverheads(omp_fork_base=-1.0)

    def test_scaled(self):
        oh = RuntimeOverheads().scaled(2.0)
        assert oh.omp_fork_base == 2 * DEFAULT_OVERHEADS.omp_fork_base
        assert oh.cilk_steal == 2 * DEFAULT_OVERHEADS.cilk_steal

    def test_scaled_zero(self):
        oh = RuntimeOverheads().scaled(0.0)
        assert oh.omp_fork_base == 0.0
        assert oh.omp_lock_acquire == 0.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeOverheads().scaled(-1.0)

    def test_with_override(self):
        oh = RuntimeOverheads().with_(omp_fork_base=9999.0)
        assert oh.omp_fork_base == 9999.0
        assert oh.omp_join_barrier == DEFAULT_OVERHEADS.omp_join_barrier


class TestMeasureOverheads:
    @pytest.fixture(scope="class")
    def measured(self):
        return measure_overheads(MachineConfig(n_cores=4), reps=5)

    def test_reports_all_probes(self, measured):
        assert set(measured) == {
            "parallel_region",
            "static_iteration",
            "dynamic_iteration",
            "lock_pair",
        }

    def test_region_cost_reflects_fork_join(self, measured):
        oh = DEFAULT_OVERHEADS
        floor = oh.omp_fork_base + oh.omp_fork_per_thread + oh.omp_join_barrier
        assert measured["parallel_region"] >= floor

    def test_dynamic_iteration_costlier_than_static(self, measured):
        assert measured["dynamic_iteration"] > measured["static_iteration"]

    def test_lock_pair_cost(self, measured):
        oh = DEFAULT_OVERHEADS
        assert measured["lock_pair"] == pytest.approx(
            oh.omp_lock_acquire + oh.omp_lock_release, rel=0.01
        )

    def test_overheads_scale_with_constants(self):
        small = measure_overheads(
            MachineConfig(n_cores=4), RuntimeOverheads().scaled(0.5), reps=3
        )
        big = measure_overheads(
            MachineConfig(n_cores=4), RuntimeOverheads().scaled(2.0), reps=3
        )
        assert big["parallel_region"] > small["parallel_region"]
