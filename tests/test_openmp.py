"""Tests for the OpenMP-like runtime: schedules, barriers, nesting."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import OmpRuntime, RuntimeOverheads, Schedule, ScheduleKind
from repro.simhw import MachineConfig
from repro.simos import Compute, GetTime, SimKernel

ZERO_OH = RuntimeOverheads().scaled(0.0)


def run_loop(machine, bodies, n_threads, schedule, overheads=ZERO_OH):
    kernel = SimKernel(machine)
    omp = OmpRuntime(kernel, overheads)

    def master():
        yield from omp.parallel_for(bodies, n_threads=n_threads, schedule=schedule)

    kernel.spawn(master(), name="master")
    return kernel.run()


def body_of(cycles, log=None, tag=None):
    def body():
        if log is not None:
            log.append(tag)
        yield Compute(cycles=cycles)

    return body


class TestSchedaParsing:
    def test_parse_static(self):
        s = Schedule.parse("static")
        assert s.kind is ScheduleKind.STATIC

    def test_parse_static_chunk(self):
        s = Schedule.parse("static,4")
        assert s.kind is ScheduleKind.STATIC_CHUNK
        assert s.chunk == 4

    def test_parse_dynamic(self):
        s = Schedule.parse("dynamic,1")
        assert s.kind is ScheduleKind.DYNAMIC

    def test_parse_paren_form(self):
        assert Schedule.parse("(static,1)").label == "static,1"

    def test_parse_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            Schedule.parse("runtime")

    def test_parse_guided(self):
        s = Schedule.parse("guided,2")
        assert s.kind is ScheduleKind.GUIDED
        assert s.chunk == 2
        assert s.label == "guided,2"

    def test_chunk_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Schedule.static_chunk(0)

    def test_labels(self):
        assert Schedule.static().label == "static"
        assert Schedule.dynamic(2).label == "dynamic,2"


class TestStaticAssignment:
    def test_static_partitions_exactly(self):
        owned = Schedule.static().static_assignment(10, 3)
        flat = sorted(i for chunk in owned for i in chunk)
        assert flat == list(range(10))
        # Contiguous blocks, first threads get the extras.
        assert owned[0] == [0, 1, 2, 3]
        assert owned[1] == [4, 5, 6]

    def test_static_chunk_round_robin(self):
        owned = Schedule.static_chunk(2).static_assignment(8, 2)
        assert owned[0] == [0, 1, 4, 5]
        assert owned[1] == [2, 3, 6, 7]

    def test_dynamic_has_no_static_assignment(self):
        with pytest.raises(ConfigurationError):
            Schedule.dynamic(1).static_assignment(4, 2)

    def test_chunks_cover_space(self):
        chunks = Schedule.dynamic(3).chunks(10)
        flat = [i for c in chunks for i in c]
        assert flat == list(range(10))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]


class TestParallelFor:
    def test_balanced_loop_scales(self, machine4):
        bodies = [body_of(90_000)] * 8
        t = run_loop(machine4, bodies, 4, Schedule.static())
        assert t == pytest.approx(180_000.0, rel=0.01)

    def test_single_thread_serializes(self, machine4):
        bodies = [body_of(10_000)] * 6
        t = run_loop(machine4, bodies, 1, Schedule.static())
        assert t == pytest.approx(60_000.0, rel=0.01)

    def test_every_iteration_runs_once(self, machine4):
        log = []
        bodies = [body_of(100, log, i) for i in range(20)]
        for sched in (Schedule.static(), Schedule.static_chunk(1), Schedule.dynamic(1)):
            log.clear()
            run_loop(machine4, bodies, 3, sched)
            assert sorted(log) == list(range(20))

    def test_imbalance_static_vs_dynamic(self, machine4):
        # Ramp costs: plain static puts the heavy tail on one thread.
        bodies = [body_of((i + 1) * 10_000) for i in range(12)]
        t_static = run_loop(machine4, bodies, 4, Schedule.static())
        t_dyn = run_loop(machine4, bodies, 4, Schedule.dynamic(1))
        t_rr = run_loop(machine4, bodies, 4, Schedule.static_chunk(1))
        assert t_static > t_rr
        assert t_static > t_dyn

    def test_empty_loop(self, machine4):
        t = run_loop(machine4, [], 4, Schedule.static())
        assert t == 0.0

    def test_invalid_thread_count(self, machine4):
        with pytest.raises(ConfigurationError):
            run_loop(machine4, [body_of(1)], 0, Schedule.static())

    def test_fork_overhead_charged(self, machine4):
        oh = RuntimeOverheads().scaled(0.0).with_(
            omp_fork_base=1000.0, omp_fork_per_thread=500.0
        )
        t = run_loop(machine4, [body_of(0)] * 4, 4, Schedule.static(), overheads=oh)
        assert t >= 1000.0 + 500.0 * 3

    def test_barrier_waits_for_slowest(self, machine4):
        times = []

        def fast():
            yield Compute(cycles=100)

        def slow():
            yield Compute(cycles=50_000)

        kernel = SimKernel(machine4)
        omp = OmpRuntime(kernel, ZERO_OH)

        def master():
            yield from omp.parallel_for(
                [fast, fast, fast, slow], n_threads=4, schedule=Schedule.static()
            )
            times.append((yield GetTime()))

        kernel.spawn(master())
        kernel.run()
        assert times[0] >= 50_000.0

    def test_nowait_returns_workers(self, machine4):
        from repro.simos import Join

        kernel = SimKernel(machine4)
        omp = OmpRuntime(kernel, ZERO_OH)
        seen = []

        def master():
            # Static split: master owns the two cheap iterations, the
            # worker owns the two expensive ones.
            workers = yield from omp.parallel_for(
                [body_of(1_000), body_of(1_000), body_of(50_000), body_of(50_000)],
                n_threads=2,
                schedule=Schedule.static(),
                nowait=True,
            )
            seen.append((yield GetTime()))  # before the worker finishes
            for w in workers:
                yield Join(w)

        kernel.spawn(master())
        kernel.run()
        # Master left the region long before the worker's share completed.
        assert seen[0] == pytest.approx(2_000.0, rel=0.01)


class TestNestedParallelism:
    def test_nested_teams_oversubscribe(self):
        """Fig. 7: 2 outer tasks x nested loops {10, 5} and {5, 10} units on
        2 cores -> fair time sharing gives the 2.0x outcome."""
        machine = MachineConfig(n_cores=2, timeslice_cycles=10_000.0)
        unit = 1_000_000.0

        def nested_body(c):
            def body():
                yield Compute(cycles=c)

            return body

        kernel = SimKernel(machine)
        omp = OmpRuntime(kernel, ZERO_OH)

        def outer_task(costs):
            def body():
                yield from omp.parallel_for(
                    [nested_body(c) for c in costs],
                    n_threads=2,
                    schedule=Schedule.static(),
                )

            return body

        def master():
            yield from omp.parallel_for(
                [outer_task([10 * unit, 5 * unit]), outer_task([5 * unit, 10 * unit])],
                n_threads=2,
                schedule=Schedule.static(),
            )

        kernel.spawn(master())
        end = kernel.run()
        assert end == pytest.approx(15 * unit, rel=0.03)

    def test_region_count(self, machine4):
        kernel = SimKernel(machine4)
        omp = OmpRuntime(kernel, ZERO_OH)

        def inner():
            yield Compute(cycles=100)

        def outer():
            yield from omp.parallel_for([inner] * 2, 2, Schedule.static())

        def master():
            yield from omp.parallel_for([outer] * 3, 3, Schedule.static())

        kernel.spawn(master())
        kernel.run()
        assert omp.regions_forked == 4  # 1 outer + 3 nested


class TestGuidedSchedule:
    def test_guided_chunks_shrink(self):
        chunks = Schedule.guided(1).chunks(100, 4)
        sizes = [len(c) for c in chunks]
        assert sizes[0] == 25  # remaining/t at the start
        assert sizes == sorted(sizes, reverse=True) or sizes[-1] == 1
        assert sum(sizes) == 100
        flat = [i for c in chunks for i in c]
        assert flat == list(range(100))

    def test_guided_min_chunk_respected(self):
        chunks = Schedule.guided(8).chunks(100, 4)
        # Every chunk except possibly the last is >= the minimum.
        assert all(len(c) >= 8 for c in chunks[:-1])

    def test_guided_runs_every_iteration_once(self, machine4):
        log = []
        bodies = [body_of(100, log, i) for i in range(30)]
        run_loop(machine4, bodies, 3, Schedule.guided(1))
        assert sorted(log) == list(range(30))

    def test_guided_balances_ramp(self, machine4):
        bodies = [body_of((i + 1) * 10_000) for i in range(24)]
        t_guided = run_loop(machine4, bodies, 4, Schedule.guided(1))
        t_static = run_loop(machine4, bodies, 4, Schedule.static())
        assert t_guided < t_static

    def test_guided_no_static_assignment(self):
        with pytest.raises(ConfigurationError):
            Schedule.guided(1).static_assignment(10, 2)

    def test_ff_supports_guided(self):
        from repro.core.ffemu import FastForwardEmulator
        from repro.core.profiler import IntervalProfiler

        def program(tr):
            with tr.section("loop"):
                for i in range(24):
                    with tr.task():
                        tr.compute((i + 1) * 10_000)

        profile = IntervalProfiler(MachineConfig(n_cores=4)).profile(program)
        ff = FastForwardEmulator(ZERO_OH)
        t_guided, _ = ff.emulate_profile(profile.tree, 4, Schedule.guided(1))
        t_static, _ = ff.emulate_profile(profile.tree, 4, Schedule.static())
        assert t_guided < t_static

    def test_ff_guided_matches_replay(self):
        from repro.core.executor import ParallelExecutor, ReplayMode
        from repro.core.ffemu import FastForwardEmulator
        from repro.core.profiler import IntervalProfiler

        machine = MachineConfig(n_cores=4)

        def program(tr):
            with tr.section("loop"):
                for i in range(20):
                    with tr.task():
                        tr.compute(20_000 + (i % 5) * 7_000)

        profile = IntervalProfiler(machine).profile(program)
        ff = FastForwardEmulator(ZERO_OH)
        ff_time, _ = ff.emulate_profile(profile.tree, 4, Schedule.guided(1))
        ex = ParallelExecutor(machine, schedule=Schedule.guided(1), overheads=ZERO_OH)
        real = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        assert ff_time == pytest.approx(real.total_cycles, rel=0.05)
