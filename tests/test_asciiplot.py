"""Tests for the ASCII speedup-chart renderer."""

import pytest

from repro.core.asciiplot import speedup_chart


class TestSpeedupChart:
    def test_renders_all_series_marks(self):
        chart = speedup_chart(
            {"Real": [1.9, 3.5, 4.4], "Pred": [2.0, 4.0, 6.0]},
            [2, 4, 6],
        )
        assert "o" in chart and "x" in chart
        assert "o=Real" in chart and "x=Pred" in chart

    def test_ideal_line_present(self):
        chart = speedup_chart({"s": [1.0, 1.0]}, [2, 12], ideal=True)
        assert ".=ideal" in chart
        assert "." in chart.splitlines()[0] or any(
            "." in line for line in chart.splitlines()[:-2]
        )

    def test_no_ideal(self):
        chart = speedup_chart({"s": [1.0, 2.0]}, [2, 4], ideal=False)
        assert "ideal" not in chart

    def test_axis_ticks_show_threads(self):
        chart = speedup_chart({"s": [1, 2, 3]}, [2, 8, 12])
        assert " 2 " in chart and " 12 " in chart

    def test_first_series_wins_overlaps(self):
        chart = speedup_chart(
            {"Real": [4.0], "Pred": [4.0]}, [4], ideal=False, height=6
        )
        # Both series land on the same cell; the first keeps its mark.
        body = "\n".join(chart.splitlines()[:-3])
        assert "o" in body
        assert "x" not in body

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            speedup_chart({"s": [1.0]}, [2, 4])

    def test_empty(self):
        assert speedup_chart({}, []) == "(no data)"

    def test_y_axis_covers_max(self):
        chart = speedup_chart({"s": [24.0, 30.0]}, [2, 4], ideal=False)
        assert "30.0" in chart

    def test_saturating_curve_flat_tail(self):
        """The Fig. 2 shape: a saturated series occupies a single row on
        its plateau."""
        chart = speedup_chart(
            {"Real": [1.9, 3.6, 4.5, 4.5, 4.5, 4.5]},
            [2, 4, 6, 8, 10, 12],
        )
        rows_with_o = [line for line in chart.splitlines() if "o" in line and "|" in line]
        plateau_row = [line for line in rows_with_o if line.count("o") >= 4]
        assert plateau_row
