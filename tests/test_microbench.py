"""Tests for the DRAM calibration microbenchmark and Ψ/Φ fits (Eqs. 6-7)."""

import pytest

from repro.core.microbench import (
    CalibrationResult,
    PhiFit,
    PsiFit,
    calibrate_memory_model,
)
from repro.errors import CalibrationError
from repro.simhw import MachineConfig

M = MachineConfig(n_cores=12)


@pytest.fixture(scope="module")
def cal() -> CalibrationResult:
    return calibrate_memory_model(M, thread_counts=(2, 4, 8, 12))


class TestCalibrationRun:
    def test_psi_fit_per_thread_count(self, cal):
        assert set(cal.psi) == {2, 4, 8, 12}

    def test_t2_is_linear_others_log(self, cal):
        """Eq. 6's functional forms: linear for t=2, logarithmic for t>=4."""
        assert cal.psi[2].form == "linear"
        for t in (4, 8, 12):
            assert cal.psi[t].form == "log"

    def test_phi_power_law_negative_exponent(self, cal):
        """Eq. 7: omega = a * delta^b with b < 0 (the paper's -0.964)."""
        assert cal.phi.b < 0
        assert cal.phi.a > 0

    def test_samples_recorded(self, cal):
        assert len(cal.samples) > 30
        assert any(s.n_threads == 1 for s in cal.samples)
        assert any(s.n_threads == 12 for s in cal.samples)

    def test_summary_renders_formulas(self, cal):
        text = cal.summary()
        assert "delta_2" in text and "omega_t" in text

    def test_no_thread_counts_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_memory_model(M, thread_counts=(1,))


class TestPsiPredictions:
    def test_single_thread_identity(self, cal):
        assert cal.predict_per_thread_traffic(3000.0, 1) == 3000.0

    def test_per_thread_traffic_decreases_with_threads(self, cal):
        delta = 3000.0
        values = [cal.predict_per_thread_traffic(delta, t) for t in (2, 4, 8, 12)]
        assert values[0] > values[-1]

    def test_never_exceeds_demand(self, cal):
        for delta in (2000.0, 3000.0, 5000.0):
            for t in (2, 4, 8, 12):
                assert cal.predict_per_thread_traffic(delta, t) <= delta

    def test_interpolation_between_calibrated_counts(self, cal):
        d6 = cal.predict_per_thread_traffic(3000.0, 6)
        d4 = cal.predict_per_thread_traffic(3000.0, 4)
        d8 = cal.predict_per_thread_traffic(3000.0, 8)
        assert min(d4, d8) <= d6 <= max(d4, d8)

    def test_saturated_total_near_peak(self, cal):
        """At heavy serial traffic, predicted total achieved traffic for 12
        threads should sit near the machine's peak bandwidth."""
        total = 12 * cal.predict_per_thread_traffic(4000.0, 12)
        peak_mbs = M.dram_peak_bytes_per_sec / 1e6
        assert total == pytest.approx(peak_mbs, rel=0.35)


class TestPhiPredictions:
    def test_stall_grows_as_per_thread_traffic_falls(self, cal):
        low = cal.predict_stall(800.0)
        high = cal.predict_stall(4000.0)
        assert low > high

    def test_floor_is_base_stall(self, cal):
        assert cal.predict_stall(1e9) == M.base_miss_stall
        assert cal.predict_stall(0.0) == M.base_miss_stall

    def test_phi_formula_renders(self, cal):
        assert "omega_t" in cal.phi.formula()


class TestFitObjects:
    def test_psifit_linear_eval(self):
        fit = PsiFit(n_threads=2, form="linear", a=2.0, b=100.0)
        assert fit.total_traffic(1000.0) == pytest.approx(2100.0)
        assert fit.per_thread(1000.0) == pytest.approx(1000.0)  # clamped to demand

    def test_psifit_log_eval(self):
        import math

        fit = PsiFit(n_threads=4, form="log", a=1000.0, b=0.0)
        assert fit.total_traffic(math.e**2) == pytest.approx(2000.0)

    def test_phifit_eval(self):
        fit = PhiFit(a=1e5, b=-1.0, floor=30.0)
        assert fit.stall_per_miss(1000.0) == pytest.approx(100.0)
        assert fit.stall_per_miss(1e9) == 30.0  # floored
