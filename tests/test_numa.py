"""Tests for multi-socket (NUMA) DRAM pools.

The paper runs on a two-socket Westmere and notes "such a 20% deviation in
speedups is often observed in multiple socket machines" (Section VII-B).
With per-socket bandwidth pools those deviations emerge mechanistically:
threads spread unevenly across sockets saturate one pool early.
"""

import pytest

from repro.core.executor import ParallelExecutor, ReplayMode
from repro.core.profiler import IntervalProfiler
from repro.errors import ConfigurationError
from repro.simhw import MachineConfig, WESTMERE_12, WESTMERE_12_NUMA
from repro.simhw.memtrace import AccessPattern, MemSpec
from repro.simos import Compute, Join, SimKernel, Spawn


class TestConfig:
    def test_default_is_single_pool(self):
        assert WESTMERE_12.n_sockets == 1

    def test_numa_preset(self):
        assert WESTMERE_12_NUMA.n_sockets == 2
        assert (
            WESTMERE_12_NUMA.dram_peak_bytes_per_sec_per_socket
            == WESTMERE_12_NUMA.dram_peak_bytes_per_sec / 2
        )

    def test_socket_mapping_interleaved(self):
        m = MachineConfig(n_cores=4, n_sockets=2)
        assert [m.socket_of(c) for c in range(4)] == [0, 1, 0, 1]

    def test_cores_must_divide(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(n_cores=5, n_sockets=2)

    def test_with_cores_drops_incompatible_sockets(self):
        m = MachineConfig(n_cores=12, n_sockets=2).with_cores(5)
        assert m.n_sockets == 1


def _stream_threads(machine, n):
    """n fully memory-bound threads; returns makespan."""
    kernel = SimKernel(machine)
    misses = 1e6

    def stream():
        yield Compute(
            cycles=misses * machine.base_miss_stall,
            instructions=misses,
            llc_misses=misses,
        )

    def main():
        ts = []
        for _ in range(n):
            ts.append((yield Spawn(stream())))
        for t in ts:
            yield Join(t)

    kernel.spawn(main())
    return kernel.run()


class TestNumaContention:
    UMA = MachineConfig(n_cores=8, n_sockets=1)
    NUMA = MachineConfig(n_cores=8, n_sockets=2)

    def test_even_spread_matches_uma(self):
        """Homogeneous threads on interleaved cores split evenly: each
        socket is a half-scale copy of the pooled system."""
        assert _stream_threads(self.NUMA, 4) == pytest.approx(
            _stream_threads(self.UMA, 4), rel=1e-6
        )

    def test_odd_counts_deviate(self):
        """3 threads land 2-vs-1 across sockets: the 2-thread socket
        saturates its half-pool while the pooled model would not."""
        uma = _stream_threads(self.UMA, 3)
        numa = _stream_threads(self.NUMA, 3)
        assert numa > uma * 1.05

    def test_single_thread_sees_half_bandwidth_headroom(self):
        # One streaming thread demands ~6 GB/s against a 6 GB/s socket pool
        # (u = 1) instead of a 12 GB/s machine pool (u = 0.5).
        uma = _stream_threads(self.UMA, 1)
        numa = _stream_threads(self.NUMA, 1)
        assert numa > uma

    def test_paperlike_deviation_band(self):
        """On an FT-like replay the odd-thread-count deviations land in the
        paper's 'about 20%' band, not far beyond it."""
        def program(tr):
            spec = MemSpec(AccessPattern.STREAMING, bytes_touched=18_000_000)
            with tr.section("hot"):
                for _ in range(30):
                    with tr.task():
                        tr.compute(10_000_000, mem=spec)

        deviations = []
        for t in (5, 7, 9):
            results = {}
            for label, machine in (("uma", WESTMERE_12), ("numa", WESTMERE_12_NUMA)):
                profile = IntervalProfiler(machine).profile(program)
                ex = ParallelExecutor(machine)
                results[label] = ex.execute_profile(
                    profile.tree, t, ReplayMode.REAL
                ).speedup
            deviations.append(
                abs(results["numa"] - results["uma"]) / results["uma"]
            )
        assert max(deviations) > 0.05  # the effect exists
        assert max(deviations) < 0.30  # and stays near the paper's ~20%
