"""Tests for the burden-factor memory model (paper Section V)."""

import pytest

from repro.core.memmodel import (
    MPI_THRESHOLD,
    MemoryModel,
    MissVariation,
    TrafficLevel,
    classify_memory_behavior,
)
from repro.core.microbench import calibrate_memory_model
from repro.core.profiler import SectionCounters
from repro.errors import CalibrationError
from repro.simhw import CounterSet, MachineConfig

M = MachineConfig(n_cores=12)


@pytest.fixture(scope="module")
def calibration():
    return calibrate_memory_model(M, thread_counts=(2, 4, 8, 12))


def section_with(instructions, cycles, misses, name="s") -> SectionCounters:
    return SectionCounters(
        name=name,
        total=CounterSet(instructions, cycles, misses),
        invocations=1,
    )


def memory_heavy_section(machine=M) -> SectionCounters:
    """A section matching an FT-like profile: ~0.45 memory fraction."""
    instructions = 1e8
    misses = instructions * 0.028
    cycles = instructions * 1.0 + misses * machine.base_miss_stall
    return section_with(instructions, cycles, misses)


class TestBurdenFactor:
    def test_low_mpi_gives_one(self, calibration):
        model = MemoryModel(calibration)
        sec = section_with(1e8, 1e8, 1e8 * MPI_THRESHOLD * 0.5)
        assert model.burden(sec, 12) == 1.0

    def test_low_traffic_gives_one(self, calibration):
        model = MemoryModel(calibration)
        # High MPI but glacial execution -> tiny MB/s.
        sec = section_with(1e6, 1e12, 5e3)
        assert model.burden(sec, 12) == 1.0

    def test_single_thread_is_one(self, calibration):
        model = MemoryModel(calibration)
        assert model.burden(memory_heavy_section(), 1) == 1.0

    def test_memory_heavy_burden_exceeds_one(self, calibration):
        model = MemoryModel(calibration)
        beta = model.burden(memory_heavy_section(), 12)
        assert beta > 1.2

    def test_burden_at_least_one(self, calibration):
        model = MemoryModel(calibration)
        for t in (2, 4, 8, 12):
            assert model.burden(memory_heavy_section(), t) >= 1.0

    def test_burden_grows_broadly_with_threads(self, calibration):
        model = MemoryModel(calibration)
        betas = [model.burden(memory_heavy_section(), t) for t in (2, 4, 8, 12)]
        assert betas[-1] > betas[0]

    def test_ft_like_range_matches_paper(self, calibration):
        """Paper: 'the burden factors of NPB-FT show the range of 1.0 to
        1.45 for two to 12 cores' — ours should be the same order."""
        model = MemoryModel(calibration)
        betas = [model.burden(memory_heavy_section(), t) for t in (2, 4, 8, 12)]
        assert betas[0] < 1.3
        assert 1.3 < betas[-1] < 5.0

    def test_empty_counters_rejected(self, calibration):
        model = MemoryModel(calibration)
        with pytest.raises(CalibrationError):
            model.burden(section_with(0, 0, 0), 4)

    def test_breakdowns_recorded(self, calibration):
        model = MemoryModel(calibration)
        model.burden(memory_heavy_section(), 8)
        assert model.breakdowns[-1].n_threads == 8
        assert model.breakdowns[-1].beta >= 1.0

    def test_burden_table(self, calibration):
        model = MemoryModel(calibration)
        table = model.burden_table(memory_heavy_section(), [2, 4, 8])
        assert set(table) == {2, 4, 8}


class TestAttach:
    def test_attach_fills_profile(self, calibration):
        from repro.core.profiler import IntervalProfiler
        from repro.simhw.memtrace import AccessPattern, MemSpec

        def program(tr):
            spec = MemSpec(AccessPattern.STREAMING, bytes_touched=18_000_000)
            with tr.section("hot"):
                for _ in range(8):
                    with tr.task():
                        tr.compute(10_000_000, mem=spec)

        profile = IntervalProfiler(M).profile(program)
        model = MemoryModel(calibration)
        model.attach(profile, [2, 12])
        assert set(profile.burdens["hot"]) == {2, 12}
        assert profile.burdens["hot"][12] > 1.0


class TestClassification:
    def test_low_traffic_scalable(self):
        level, verdict = classify_memory_behavior(100.0, M)
        assert level is TrafficLevel.LOW
        assert verdict == "Scalable"

    def test_moderate(self):
        level, verdict = classify_memory_behavior(1800.0, M)
        assert level is TrafficLevel.MODERATE
        assert verdict == "Slowdown"

    def test_heavy(self):
        level, verdict = classify_memory_behavior(2500.0, M)
        assert level is TrafficLevel.HEAVY
        assert verdict == "Slowdown++"

    def test_decreasing_misses_superlinear_row(self):
        _, verdict = classify_memory_behavior(
            100.0, M, MissVariation.DECREASES
        )
        assert "superlinear" in verdict

    def test_increasing_misses_row(self):
        _, verdict = classify_memory_behavior(
            1800.0, M, MissVariation.INCREASES
        )
        assert verdict == "Slowdown+"

    def test_thresholds_scale_with_peak(self):
        fast = MachineConfig(dram_peak_gbs=100.0)
        level, _ = classify_memory_behavior(6000.0, fast)
        assert level is TrafficLevel.LOW
