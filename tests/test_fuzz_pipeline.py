"""End-to-end fuzzing: random annotated programs through the whole pipeline.

Hypothesis generates arbitrary well-formed annotated programs (nested
sections, locks, memory specs, repeats); each one must profile, compress,
serialize, and emulate (FF + synthesizer + REAL replay) without crashing,
with the cross-cutting invariants holding:

- serial time is conserved by profiling and compression;
- every emulator's speedup is within (0, n_threads];
- FAKE replay with burden 1 and the REAL replay agree when no memory is
  involved (they see the same lengths);
- serialization round-trips to identical predictions.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.executor import ParallelExecutor, ReplayMode
from repro.core.ffemu import FastForwardEmulator
from repro.core.profiler import IntervalProfiler
from repro.core.serialize import profile_from_dict, profile_to_dict
from repro.runtime import RuntimeOverheads, Schedule
from repro.simhw import MachineConfig
from repro.simhw.memtrace import AccessPattern, MemSpec

M = MachineConfig(n_cores=4)
ZERO_OH = RuntimeOverheads().scaled(0.0)

# ----------------------------------------------------------- program genes

mem_specs = st.one_of(
    st.none(),
    st.builds(
        MemSpec,
        pattern=st.sampled_from(
            [AccessPattern.STREAMING, AccessPattern.RESIDENT, AccessPattern.RANDOM]
        ),
        bytes_touched=st.integers(min_value=64, max_value=4_000_000),
        working_set=st.integers(min_value=0, max_value=40_000_000),
    ),
)


@st.composite
def leaf_ops(draw):
    return (
        "compute",
        draw(st.floats(min_value=10.0, max_value=200_000.0)),
        draw(mem_specs),
        draw(st.one_of(st.none(), st.integers(1, 2))),  # lock id
    )


@st.composite
def task_bodies(draw, depth):
    ops = draw(st.lists(leaf_ops(), min_size=1, max_size=3))
    nested = []
    if depth > 0 and draw(st.booleans()):
        nested = [draw(section_descs(depth - 1))]
    return (ops, nested)


@st.composite
def section_descs(draw, depth=2):
    n_tasks = draw(st.integers(min_value=1, max_value=4))
    tasks = [draw(task_bodies(depth)) for _ in range(n_tasks)]
    return ("sec", tasks)


@st.composite
def programs(draw):
    """A program description: top-level serial chunks and sections."""
    items = draw(
        st.lists(
            st.one_of(
                st.floats(min_value=10.0, max_value=100_000.0),  # serial U
                section_descs(depth=2),
            ),
            min_size=1,
            max_size=4,
        )
    )
    return items


# The description → annotated-program builder lives in repro.validate.fuzz
# so the CLI's deterministic fuzz driver (`repro check`) replays the exact
# same program shapes this suite explores.
from repro.validate.fuzz import build_program  # noqa: E402


# ----------------------------------------------------------------- the fuzz


class TestPipelineFuzz:
    @given(programs(), st.integers(min_value=1, max_value=4))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_everything_holds_together(self, items, n_threads):
        program = build_program(items)
        profile = IntervalProfiler(M).profile(program)
        serial = profile.serial_cycles()
        assert serial > 0

        # Compression conserved the total (profiler compresses by default).
        tree_total = profile.tree.serial_cycles()
        assert tree_total == pytest.approx(serial, rel=1e-9)

        # FF.
        ff = FastForwardEmulator(ZERO_OH)
        ff_time, _ = ff.emulate_profile(
            profile.tree, n_threads, Schedule.static_chunk(1)
        )
        assert 0 < serial / ff_time <= n_threads + 1e-9

        # Replays.  Bounds are looser than the FF's abstract machine:
        # - nested OpenMP teams spawn *physical* threads, so a "t-thread"
        #   program legitimately uses up to n_cores cores;
        # - REAL recomputes durations from leaf compositions, which RLE
        #   averages within tolerance while the DRAM slowdown is nonlinear
        #   in them — a few percent of drift;
        # - FAKE subtracts the *longest per-worker* traversal overhead
        #   (Fig. 8 line 26), which can over-subtract on trees of tiny
        #   nodes — the synthesizer's documented approximation.
        ex = ParallelExecutor(M, schedule=Schedule.static_chunk(1), overheads=ZERO_OH)
        real = ex.execute_profile(profile.tree, n_threads, ReplayMode.REAL)
        fake = ex.execute_profile(profile.tree, n_threads, ReplayMode.FAKE)
        assert 0 < real.speedup <= M.n_cores * 1.06
        assert 0 < fake.speedup <= M.n_cores * 1.20

        # Serialization round-trips to identical FF predictions.
        restored = profile_from_dict(profile_to_dict(profile))
        ff_time2, _ = ff.emulate_profile(
            restored.tree, n_threads, Schedule.static_chunk(1)
        )
        assert ff_time2 == pytest.approx(ff_time, rel=1e-12)

    @given(programs())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_fake_matches_real_without_memory(self, items):
        """Strip memory specs and locks: FAKE and REAL replay the same
        delays, so their speedups must agree tightly.

        Leaf durations are clamped to >= 5000 cycles: the FAKE replay pays
        ~100 cycles of traversal overhead per node and subtracts only the
        longest per-worker total (Fig. 8 line 26), so on trees of tiny
        leaves the residual is unbounded relative to the work (fuzzing
        found 10-cycle leaves under triple-nested sections off by 6x).
        The agreement claim — and this test — applies to the regime where
        leaves dwarf the per-node cost, which real profiled intervals do.

        Locks are stripped for the same reason memory is: FAKE commits to
        one lock interleaving while REAL develops its own, so lock-heavy
        trees diverge from any *single* FAKE replay (fuzzing found a
        triple-nested two-lock tree at static,1 off by 25%).  Lock-bearing
        trees get the sharper envelope check instead —
        ``test_real_inside_explored_envelope_with_locks`` below keeps the
        locks and asserts REAL falls within the explored [min, max] band
        (see docs/exploration.md).
        """

        def strip(item):
            if isinstance(item, float):
                return item
            kind, tasks = item
            return (
                kind,
                [
                    (
                        [
                            (op, max(cyc, 5_000.0), None, None)
                            for op, cyc, _, _lock in ops
                        ],
                        [strip(s) for s in nested],
                    )
                    for ops, nested in tasks
                ],
            )

        stripped = [strip(i) for i in items]
        profile = IntervalProfiler(M).profile(build_program(stripped))
        ex = ParallelExecutor(M, schedule=Schedule.static_chunk(1), overheads=ZERO_OH)
        real = ex.execute_profile(profile.tree, 3, ReplayMode.REAL)
        fake = ex.execute_profile(profile.tree, 3, ReplayMode.FAKE)
        # FAKE additionally pays per-node traversal costs and subtracts the
        # longest per-worker total afterwards (Fig. 8) — an imperfect
        # correction the paper acknowledges; on fuzz trees of tiny nodes it
        # shows up as a few percent.
        assert fake.speedup == pytest.approx(real.speedup, rel=0.06)

    @given(programs())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_real_inside_explored_envelope_with_locks(self, items):
        """Keep the locks, explore the interleavings: REAL must fall inside
        the [min, max] speedup envelope over explored handoff policies.

        This is the check the stripped test above cannot make.  A single
        FAKE replay commits to the FIFO interleaving and can sit 25% away
        from REAL on lock-heavy trees; the envelope spans fifo/lifo/
        adversarial/seeded-random handoffs, so REAL's interleaving is
        bracketed instead of compared to one arbitrary point.  Memory is
        still stripped and leaves clamped (same regime argument as above) —
        only the lock structure stays live.

        Locks *inside nested sections* are stripped too: fuzzing found a
        triple-nested tree whose only lock sits two teams deep, where every
        handoff variant replays identically (the FAKE replay's nested team
        never develops the contention REAL does), so the envelope collapses
        to a point ~20% from REAL.  That is the nested-team fidelity gap of
        paper Fig. 7 — a property of nesting, not of lock-acquisition
        order — so the envelope claim applies to locks held by the
        top-level team (see docs/exploration.md).
        """
        from repro.core.prophet import ParallelProphet
        from repro.validate import ENVELOPE_SLACK

        def strip_mem(item, in_nested=False):
            if isinstance(item, float):
                return item
            kind, tasks = item
            return (
                kind,
                [
                    (
                        [
                            (op, max(cyc, 5_000.0), None,
                             None if in_nested else lock)
                            for op, cyc, _, lock in ops
                        ],
                        [strip_mem(s, in_nested=True) for s in nested],
                    )
                    for ops, nested in tasks
                ],
            )

        stripped = [strip_mem(i) for i in items]
        profile = IntervalProfiler(M).profile(build_program(stripped))
        prophet = ParallelProphet(machine=M, overheads=ZERO_OH)
        report = prophet.explore(
            profile, threads=[3], schedules=["static,1"], memory_model=False
        )
        env = report.envelope(n_threads=3)
        ex = ParallelExecutor(M, schedule=Schedule.static_chunk(1), overheads=ZERO_OH)
        real = ex.execute_profile(profile.tree, 3, ReplayMode.REAL)
        assert env.contains(real.speedup, slack=ENVELOPE_SLACK)

    @given(programs(), st.integers(min_value=2, max_value=4))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_cilk_paradigm_never_crashes(self, items, n_threads):
        profile = IntervalProfiler(M).profile(build_program(items))
        ex = ParallelExecutor(M, paradigm="cilk", overheads=ZERO_OH)
        result = ex.execute_profile(profile.tree, n_threads, ReplayMode.REAL)
        assert 0 < result.speedup <= n_threads + 1e-9

    @given(programs(), st.integers(min_value=2, max_value=4))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_omp_task_paradigm_never_crashes(self, items, n_threads):
        profile = IntervalProfiler(M).profile(build_program(items))
        ex = ParallelExecutor(M, paradigm="omp_task", overheads=ZERO_OH)
        result = ex.execute_profile(profile.tree, n_threads, ReplayMode.REAL)
        assert 0 < result.speedup <= n_threads + 1e-9
