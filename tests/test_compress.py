"""Tests for RLE + dictionary tree compression (paper Section VI-B)."""

import pytest

from repro.core.compress import compress_tree
from repro.core.tree import Node, NodeKind, ProgramTree
from repro.errors import ConfigurationError


def uniform_loop_tree(n_tasks=100, length=1000.0) -> ProgramTree:
    root = Node(NodeKind.ROOT)
    sec = root.add(Node(NodeKind.SEC, name="loop"))
    for _ in range(n_tasks):
        task = sec.add(Node(NodeKind.TASK))
        task.add(Node(NodeKind.U, length=length))
    return ProgramTree(root)


def jittered_loop_tree(n_tasks=100, base=1000.0, jitter=0.02) -> ProgramTree:
    root = Node(NodeKind.ROOT)
    sec = root.add(Node(NodeKind.SEC, name="loop"))
    for i in range(n_tasks):
        task = sec.add(Node(NodeKind.TASK))
        task.add(Node(NodeKind.U, length=base * (1 + jitter * ((i % 3) - 1))))
    return ProgramTree(root)


class TestRLE:
    def test_uniform_loop_collapses(self):
        tree = uniform_loop_tree(100)
        stats = compress_tree(tree, tolerance=0.0)
        # 100 identical tasks collapse to one with repeat=100.
        sec = tree.top_level_sections()[0]
        assert len(sec.children) == 1
        assert sec.children[0].repeat == 100
        assert stats.nodes_after < stats.nodes_before

    def test_total_length_preserved_exactly(self):
        tree = jittered_loop_tree(99, jitter=0.02)
        before = tree.serial_cycles()
        compress_tree(tree, tolerance=0.05)
        assert tree.serial_cycles() == pytest.approx(before, rel=1e-12)

    def test_zero_tolerance_is_lossless(self):
        tree = jittered_loop_tree(60, jitter=0.04)
        lengths_before = sorted(
            round(n.length, 6) for n in tree.root.walk() if n.is_leaf
        )
        compress_tree(tree, tolerance=0.0)
        # Distinct lengths survive; only exact duplicates merged.
        lengths_after = set()
        for n in tree.root.walk():
            if n.is_leaf:
                lengths_after.add(round(n.length, 6))
        assert lengths_after == set(lengths_before)

    def test_alternating_pattern_not_merged_at_zero_tolerance(self):
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC))
        for i in range(10):
            task = sec.add(Node(NodeKind.TASK))
            task.add(Node(NodeKind.U, length=100.0 if i % 2 == 0 else 500.0))
        tree = ProgramTree(root)
        compress_tree(tree, tolerance=0.0)
        sec = tree.top_level_sections()[0]
        assert len(sec.children) == 10  # nothing adjacent is similar

    def test_tolerance_merges_jitter(self):
        tree = jittered_loop_tree(90, jitter=0.02)
        compress_tree(tree, tolerance=0.05)
        sec = tree.top_level_sections()[0]
        assert len(sec.children) == 1
        assert sec.children[0].repeat == 90

    def test_lock_nodes_not_merged_across_ids(self):
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC))
        for lock in (1, 2):
            task = sec.add(Node(NodeKind.TASK))
            task.add(Node(NodeKind.L, length=100, lock_id=lock))
        tree = ProgramTree(root)
        compress_tree(tree, tolerance=0.5)
        assert len(tree.top_level_sections()[0].children) == 2


class TestDictionary:
    def test_identical_sections_shared(self):
        root = Node(NodeKind.ROOT)
        for _ in range(5):
            sec = root.add(Node(NodeKind.SEC, name="x"))
            task = sec.add(Node(NodeKind.TASK))
            task.add(Node(NodeKind.U, length=100))
        tree = ProgramTree(root)
        compress_tree(tree, tolerance=0.0)
        # All five sections now reference one canonical instance.
        assert len({id(c) for c in tree.root.children}) == 1
        assert tree.logical_nodes() > tree.unique_nodes()

    def test_cg_like_reduction_exceeds_90_percent(self):
        """The paper's CG example: repeated identical iterations compress by
        93 %.  Repeated sections of uniform tasks must do at least as well."""
        root = Node(NodeKind.ROOT)
        for _it in range(50):
            for name in ("matvec", "reduce", "axpy"):
                sec = root.add(Node(NodeKind.SEC, name=name))
                for _ in range(64):
                    task = sec.add(Node(NodeKind.TASK))
                    task.add(Node(NodeKind.U, length=1000))
        tree = ProgramTree(root)
        stats = compress_tree(tree, tolerance=0.05)
        assert stats.reduction > 0.90

    def test_reduction_metric(self):
        tree = uniform_loop_tree(50)
        stats = compress_tree(tree)
        assert 0.0 <= stats.reduction < 1.0
        assert stats.bytes_after < stats.bytes_before


class TestEdgeCases:
    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            compress_tree(uniform_loop_tree(5), tolerance=-0.1)

    def test_empty_tree(self):
        tree = ProgramTree(Node(NodeKind.ROOT))
        stats = compress_tree(tree)
        assert stats.nodes_after == 1

    def test_single_task(self):
        tree = uniform_loop_tree(1)
        compress_tree(tree)
        assert tree.serial_cycles() == pytest.approx(1000.0)

    def test_nested_sections_compress(self):
        root = Node(NodeKind.ROOT)
        outer = root.add(Node(NodeKind.SEC, name="outer"))
        for _ in range(10):
            task = outer.add(Node(NodeKind.TASK))
            inner = task.add(Node(NodeKind.SEC, name="inner"))
            for _ in range(10):
                it = inner.add(Node(NodeKind.TASK))
                it.add(Node(NodeKind.U, length=42))
        tree = ProgramTree(root)
        before = tree.serial_cycles()
        stats = compress_tree(tree, tolerance=0.05)
        assert tree.serial_cycles() == pytest.approx(before)
        assert stats.nodes_after <= 6

    def test_compressed_tree_still_validates(self):
        tree = jittered_loop_tree(40)
        compress_tree(tree, tolerance=0.05)
        tree.root.validate()

    def test_work_composition_preserved(self):
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC))
        for _ in range(10):
            task = sec.add(Node(NodeKind.TASK))
            task.add(
                Node(
                    NodeKind.U,
                    length=100,
                    cpu_cycles=80,
                    instructions=90,
                    llc_misses=2,
                )
            )
        tree = ProgramTree(root)
        compress_tree(tree, tolerance=0.0)
        merged = tree.top_level_sections()[0].children[0].children[0]
        assert merged.cpu_cycles == pytest.approx(80)
        assert merged.instructions == pytest.approx(90)
        assert merged.llc_misses == pytest.approx(2)


class TestLossyCompression:
    """Paper §VI-B: lossy compression as a last resort for IS-like trees."""

    def _is_like_tree(self, n=200, seed=3):
        import numpy as np

        rng = np.random.default_rng(seed)
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC, name="rank"))
        for cost in 1000.0 * rng.lognormal(0.0, 0.7, size=n):
            task = sec.add(Node(NodeKind.TASK))
            task.add(Node(NodeKind.U, length=float(cost)))
        return ProgramTree(root)

    def test_lossless_fails_on_random_lengths(self):
        from repro.core.compress import compress_tree

        tree = self._is_like_tree()
        stats = compress_tree(tree, tolerance=0.05)
        assert stats.reduction < 0.30  # RLE finds almost nothing

    def test_lossy_compresses_hard(self):
        from repro.core.compress import compress_tree_lossy

        tree = self._is_like_tree()
        stats = compress_tree_lossy(tree, lossy_tolerance=0.20)
        assert stats.lossy
        assert stats.reduction > 0.70

    def test_lossy_error_bounded(self):
        from repro.core.compress import compress_tree_lossy

        tree = self._is_like_tree()
        lengths_before = [
            n.length for n in tree.root.walk() if n.is_leaf
        ]
        total_before = tree.serial_cycles()
        compress_tree_lossy(tree, lossy_tolerance=0.20)
        # Totals drift by at most the relative tolerance.
        assert abs(tree.serial_cycles() - total_before) / total_before < 0.20

    def test_lossy_per_leaf_bound(self):
        from repro.core.compress import _quantize_leaves

        tree = self._is_like_tree(n=50)
        before = {
            id(n): n.length for n in tree.root.walk() if n.is_leaf
        }
        _quantize_leaves(tree.root, 0.10)
        for n in tree.root.walk():
            if n.is_leaf:
                rel = abs(n.length - before[id(n)]) / before[id(n)]
                assert rel <= 0.10 + 1e-9

    def test_lossy_scales_work_composition(self):
        from repro.core.compress import compress_tree_lossy

        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC))
        task = sec.add(Node(NodeKind.TASK))
        task.add(
            Node(NodeKind.U, length=1037.0, cpu_cycles=800.0, llc_misses=4.0)
        )
        tree = ProgramTree(root)
        compress_tree_lossy(tree, lossy_tolerance=0.2)
        leaf = tree.root.children[0].children[0].children[0]
        # Composition rates are quantised on the same grid: the cpu/length
        # ratio drifts by at most ~the tolerance (not preserved exactly —
        # that's what makes leaves dictionary-sharable).
        assert leaf.cpu_cycles / leaf.length == pytest.approx(
            800.0 / 1037.0, rel=0.25
        )
        assert leaf.cpu_cycles <= leaf.length

    def test_invalid_tolerance(self):
        from repro.core.compress import compress_tree_lossy

        with pytest.raises(ConfigurationError):
            compress_tree_lossy(self._is_like_tree(), lossy_tolerance=0.0)
