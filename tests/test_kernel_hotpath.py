"""Tests for the event-sparse kernel and RLE-aware replay fast paths.

Three toggleable layers are covered: the lazy-quantum / incremental-
reconfigure kernel (``SimKernel(optimize=)``), the coalesced OpenMP replay
lowering (``ParallelExecutor(coalesce=)``), and the cross-grid section memo
(``ParallelExecutor(memoize=)``).  Every fast path must be *exact*: the
parity tests run both variants and require identical schedule traces,
preemption counts, and final times (≤1e-9 relative).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.executor import (
    ParallelExecutor,
    ReplayMode,
    clear_section_memo,
    section_memo_info,
)
from repro.core.tree import Node, NodeKind, ProgramTree
from repro.obs import Tracer
from repro.runtime.tasks import Schedule
from repro.simhw import MachineConfig
from repro.simos import Compute, Join, SimKernel, Spawn


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_section_memo()
    yield
    clear_section_memo()


# --------------------------------------------------------------- helpers


class _TracingExecutor(ParallelExecutor):
    """ParallelExecutor whose kernels record their schedule traces."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.kernels = []

    def _make_kernel(self) -> SimKernel:
        kernel = SimKernel(
            self.machine, record_trace=True, optimize=self.kernel_optimize
        )
        self.kernels.append(kernel)
        return kernel


def _replay(tree, machine, paradigm, schedule, mode, n_threads, **flags):
    ex = _TracingExecutor(
        machine, paradigm=paradigm, schedule=schedule, memoize=False, **flags
    )
    result = ex.execute_profile(tree, n_threads, mode)
    trace = [ev for k in ex.kernels for ev in k.trace]
    preemptions = sum(s.preemptions for s in result.sections)
    return result.total_cycles, preemptions, trace, ex


# --------------------------------------------------------- tree strategies

_lengths = st.floats(min_value=100.0, max_value=5e5, allow_nan=False)


@st.composite
def replay_trees(draw):
    """ROOT -> SEC* -> TASK* -> U/L leaves, with repeats and optional
    misses — the shapes the replay hot path sees."""
    root = Node(NodeKind.ROOT)
    root.add(Node(NodeKind.U, length=draw(_lengths)))
    for s in range(draw(st.integers(1, 2))):
        sec = root.add(Node(NodeKind.SEC, name=f"s{s}"))
        for _ in range(draw(st.integers(1, 4))):
            task = sec.add(
                Node(NodeKind.TASK, repeat=draw(st.sampled_from([1, 3, 17])))
            )
            for _ in range(draw(st.integers(1, 3))):
                cpu = draw(_lengths)
                missy = draw(st.booleans())
                miss = cpu / 300.0 if missy else 0.0
                if draw(st.integers(0, 5)) == 0:
                    task.add(
                        Node(
                            NodeKind.L,
                            length=cpu,
                            cpu_cycles=cpu,
                            lock_id=draw(st.integers(1, 2)),
                        )
                    )
                else:
                    task.add(
                        Node(
                            NodeKind.U,
                            length=cpu + miss * 30.0,
                            cpu_cycles=cpu,
                            instructions=cpu * 2.0,
                            llc_misses=miss,
                            repeat=draw(st.sampled_from([1, 1, 4])),
                        )
                    )
    return ProgramTree(root)


# --------------------------------------------------- satellite: counters


class TestCounterAttribution:
    """Resume switch-cost must not inflate counter attribution: instruction
    and miss totals equal the requested amounts even when segments are
    preempted and resumed many times on cold cores."""

    def test_totals_exact_under_forced_preemption(self):
        machine = MachineConfig(
            n_cores=2,
            timeslice_cycles=1_000.0,
            context_switch_cycles=700.0,
        )

        def spin(cycles, instr, misses):
            yield Compute(cycles=cycles, instructions=instr, llc_misses=misses)

        def main():
            ts = []
            for i in range(6):
                ts.append(
                    (yield Spawn(spin(40_000.0 + i * 7_000.0, 10_000.0, 64.0)))
                )
            for t in ts:
                yield Join(t)

        kernel = SimKernel(machine)
        kernel.spawn(main())
        kernel.run()
        assert kernel.preemptions > 10, "test must actually force preemption"
        assert kernel.counters.instructions == pytest.approx(60_000.0, rel=1e-12)
        assert kernel.counters.llc_misses == pytest.approx(6 * 64.0, rel=1e-12)

    def test_totals_exact_both_kernel_modes(self):
        machine = MachineConfig(
            n_cores=1, timeslice_cycles=500.0, context_switch_cycles=300.0
        )

        def spin():
            yield Compute(cycles=10_000.0, instructions=5_000.0, llc_misses=16.0)

        def main():
            a = yield Spawn(spin())
            b = yield Spawn(spin())
            yield Join(a)
            yield Join(b)

        for optimize in (True, False):
            kernel = SimKernel(machine, optimize=optimize)
            kernel.spawn(main())
            kernel.run()
            assert kernel.counters.instructions == pytest.approx(10_000.0)
            assert kernel.counters.llc_misses == pytest.approx(32.0)


# ------------------------------------------------ satellite: parity test


SCHEDULES = [Schedule.static(), Schedule.static_chunk(3), Schedule.dynamic(2)]
PARADIGMS = ["omp", "cilk", "omp_task"]


class TestKernelParity:
    """optimize=True and optimize=False kernels are indistinguishable:
    identical schedule traces, preemption counts, and final times."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        tree=replay_trees(),
        paradigm=st.sampled_from(PARADIGMS),
        schedule=st.sampled_from(SCHEDULES),
        mode=st.sampled_from([ReplayMode.REAL, ReplayMode.FAKE]),
        n_threads=st.sampled_from([1, 3, 4, 7]),
    )
    def test_optimized_matches_eager(self, tree, paradigm, schedule, mode, n_threads):
        machine = MachineConfig(n_cores=4, timeslice_cycles=20_000.0)
        t_opt, p_opt, tr_opt, _ = _replay(
            tree, machine, paradigm, schedule, mode, n_threads,
            kernel_optimize=True, coalesce=False,
        )
        t_ref, p_ref, tr_ref, _ = _replay(
            tree, machine, paradigm, schedule, mode, n_threads,
            kernel_optimize=False, coalesce=False,
        )
        assert p_opt == p_ref
        # Bitwise-identical schedules, timestamps included: anchored
        # segment progress (closed form over the rate anchor, never an
        # accumulated subtraction) makes the sparse and eager advance
        # histories agree bit for bit.
        assert tr_opt == tr_ref
        assert t_opt == pytest.approx(t_ref, rel=1e-9)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        tree=replay_trees(),
        schedule=st.sampled_from(SCHEDULES),
        mode=st.sampled_from([ReplayMode.REAL, ReplayMode.FAKE]),
        n_threads=st.sampled_from([1, 4, 7]),
    )
    def test_coalesced_matches_exact(self, tree, schedule, mode, n_threads):
        machine = MachineConfig(n_cores=4, timeslice_cycles=20_000.0)
        t_co, p_co, _, _ = _replay(
            tree, machine, "omp", schedule, mode, n_threads, coalesce=True
        )
        t_ex, p_ex, _, _ = _replay(
            tree, machine, "omp", schedule, mode, n_threads, coalesce=False
        )
        assert p_co == p_ex
        assert t_co == pytest.approx(t_ex, rel=1e-9)


# ------------------------------------------------------- event sparsity


class TestEventSparsity:
    def test_uncontended_compute_is_o1_in_duration(self):
        """An uncontended single-thread compute must push O(1) heap events
        regardless of how many timeslices it spans."""
        counts = []
        for slices in (10, 1_000):
            machine = MachineConfig(n_cores=2, timeslice_cycles=1_000.0)

            def main():
                yield Compute(cycles=slices * 1_000.0)

            kernel = SimKernel(machine)
            kernel.spawn(main())
            kernel.run()
            assert kernel.quantum_arms == 0
            counts.append(kernel.events_pushed)
        assert counts[0] == counts[1], (
            f"event count grew with duration: {counts}"
        )
        assert counts[0] <= 4

    def test_eager_kernel_is_not_o1(self):
        """The reference kernel keeps the seed's eager re-arm chain (this is
        what the optimized mode is parity-tested against)."""
        machine = MachineConfig(n_cores=2, timeslice_cycles=1_000.0)

        def main():
            yield Compute(cycles=500_000.0)

        kernel = SimKernel(machine, optimize=False)
        kernel.spawn(main())
        kernel.run()
        assert kernel.quantum_arms >= 499

    def test_zero_demand_reconfigures_skip_solver(self):
        machine = MachineConfig(n_cores=4)

        def spin():
            yield Compute(cycles=50_000.0)

        def main():
            ts = []
            for _ in range(4):
                ts.append((yield Spawn(spin())))
            for t in ts:
                yield Join(t)

        kernel = SimKernel(machine)
        kernel.spawn(main())
        kernel.run()
        assert kernel.reconfig_skips > 0
        assert kernel.reconfig_solves == 0


# ------------------------------------------------- coalescing fallbacks


def _leaf_section(with_lock=False, nested=False, misses=False):
    root = Node(NodeKind.ROOT)
    sec = root.add(Node(NodeKind.SEC, name="s"))
    for _ in range(3):
        task = sec.add(Node(NodeKind.TASK, repeat=8))
        task.add(
            Node(
                NodeKind.U,
                length=10_000.0,
                cpu_cycles=10_000.0,
                instructions=5_000.0,
                llc_misses=40.0 if misses else 0.0,
            )
        )
        if with_lock:
            task.add(
                Node(NodeKind.L, length=500.0, cpu_cycles=500.0, lock_id=1)
            )
        if nested:
            inner = task.add(Node(NodeKind.SEC, name="inner"))
            it = inner.add(Node(NodeKind.TASK, repeat=2))
            it.add(Node(NodeKind.U, length=1_000.0, cpu_cycles=1_000.0))
    return ProgramTree(root)


class TestCoalesceFallbacks:
    MACHINE = MachineConfig(n_cores=4)

    def _run(self, tree, schedule=Schedule.static()):
        ex = ParallelExecutor(
            self.MACHINE, schedule=schedule, memoize=False
        )
        ex.execute_profile(tree, 4, ReplayMode.REAL)
        return ex

    def test_leaf_only_static_coalesces(self):
        ex = self._run(_leaf_section())
        assert ex.coalesced_sections == 1
        assert ex.exact_sections == 0

    def test_locks_fall_back(self):
        ex = self._run(_leaf_section(with_lock=True))
        assert ex.coalesced_sections == 0
        assert ex.exact_sections == 1

    def test_nesting_falls_back(self):
        ex = self._run(_leaf_section(nested=True))
        assert ex.coalesced_sections == 0
        assert ex.exact_sections == 1

    def test_dynamic_schedule_falls_back(self):
        ex = self._run(_leaf_section(), schedule=Schedule.dynamic(2))
        assert ex.coalesced_sections == 0
        assert ex.exact_sections == 1

    def test_chunked_static_with_misses_falls_back(self):
        ex = self._run(_leaf_section(misses=True), schedule=Schedule.static_chunk(2))
        assert ex.coalesced_sections == 0
        assert ex.exact_sections == 1

    def test_uniform_misses_under_plain_static_coalesce(self):
        ex = self._run(_leaf_section(misses=True))
        assert ex.coalesced_sections == 1

    def test_pipeline_falls_back(self):
        root = Node(NodeKind.ROOT)
        sec = root.add(Node(NodeKind.SEC, name="p"))
        sec.pipeline = True
        for _ in range(2):
            task = sec.add(Node(NodeKind.TASK))
            for s in range(2):
                task.add(
                    Node(NodeKind.STAGE, name=f"st{s}", length=1_000.0,
                         cpu_cycles=1_000.0)
                )
        ex = self._run(ProgramTree(root))
        assert ex.coalesced_sections == 0

    def test_disabled_flag_forces_exact(self):
        ex = ParallelExecutor(self.MACHINE, coalesce=False, memoize=False)
        ex.execute_profile(_leaf_section(), 4, ReplayMode.REAL)
        assert ex.coalesced_sections == 0
        assert ex.exact_sections == 1


# ----------------------------------------------------------- section memo


class TestSectionMemo:
    MACHINE = MachineConfig(n_cores=4)

    def test_identical_sections_hit_across_executors(self):
        tree = _leaf_section()
        before = section_memo_info()["hits"]
        r1 = ParallelExecutor(self.MACHINE).execute_profile(
            tree, 4, ReplayMode.REAL
        )
        r2 = ParallelExecutor(self.MACHINE).execute_profile(
            tree, 4, ReplayMode.REAL
        )
        info = section_memo_info()
        assert info["hits"] == before + 1
        assert r1.total_cycles == r2.total_cycles

    def test_key_distinguishes_threads_and_burden(self):
        tree = _leaf_section()
        ex = ParallelExecutor(self.MACHINE)
        ex.execute_profile(tree, 2, ReplayMode.FAKE, burdens={"s": 1.0})
        misses = section_memo_info()["misses"]
        ex.execute_profile(tree, 4, ReplayMode.FAKE, burdens={"s": 1.0})
        ex.execute_profile(tree, 4, ReplayMode.FAKE, burdens={"s": 1.5})
        assert section_memo_info()["misses"] == misses + 2

    def test_tracing_bypasses_memo(self):
        tree = _leaf_section()
        tracer = Tracer(enabled=True)
        ex = ParallelExecutor(self.MACHINE, tracer=tracer)
        ex.execute_profile(tree, 4, ReplayMode.REAL)
        info = section_memo_info()
        assert info["hits"] == 0 and info["misses"] == 0

    def test_memo_result_matches_fresh_run(self):
        tree = _leaf_section(misses=True)
        a = ParallelExecutor(self.MACHINE).execute_profile(
            tree, 4, ReplayMode.REAL
        )
        clear_section_memo()
        b = ParallelExecutor(self.MACHINE, memoize=False).execute_profile(
            tree, 4, ReplayMode.REAL
        )
        assert a.total_cycles == b.total_cycles
