"""Tests for the batch sweep engine (``repro.core.batch``)."""

import pytest

from repro import ParallelProphet
from repro.core.batch import BatchPredictor, SweepTask, sweep
from repro.errors import ConfigurationError
from repro.simhw import MachineConfig

M = MachineConfig(n_cores=8)


def imbalanced_loop(tr):
    with tr.section("loop"):
        for i in range(16):
            with tr.task():
                tr.compute(5_000 + 1_000 * (i % 4))


def memory_loop(tr):
    from repro.simhw.memtrace import AccessPattern, MemSpec

    with tr.section("mem"):
        for _ in range(8):
            with tr.task():
                tr.compute(
                    20_000,
                    mem=MemSpec(AccessPattern.STREAMING, bytes_touched=1_000_000),
                )


@pytest.fixture(scope="module")
def prophet():
    return ParallelProphet(machine=M)


@pytest.fixture(scope="module")
def profiles(prophet):
    return {
        "cpu": prophet.profile(imbalanced_loop),
        "mem": prophet.profile(memory_loop),
    }


class TestSweepTask:
    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepTask("w", "static", 4, methods=("magic",))

    def test_bad_thread_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepTask("w", "static", 0)

    def test_hashable_and_frozen(self):
        task = SweepTask("w", "static", 4)
        assert task in {task}
        with pytest.raises(AttributeError):
            task.n_threads = 8


class TestSweepGrid:
    def test_grid_order_and_shape(self, prophet, profiles):
        reports = BatchPredictor(prophet, jobs=1).sweep(
            profiles,
            threads=[2, 4],
            schedules=["static", "static,1"],
            methods=("syn",),
            memory_model=False,
        )
        assert set(reports) == {"cpu", "mem"}
        keys = [
            (e.schedule, e.n_threads, e.method)
            for e in reports["cpu"].estimates
        ]
        # Schedules outer, threads inner — ParallelProphet.predict's order.
        assert keys == [
            ("static", 2, "syn"),
            ("static", 4, "syn"),
            ("static,1", 2, "syn"),
            ("static,1", 4, "syn"),
        ]

    def test_single_profile_shorthand(self, prophet, profiles):
        reports = BatchPredictor(prophet, jobs=1).sweep(
            profiles["cpu"], threads=[4], memory_model=False
        )
        assert list(reports) == ["workload"]
        assert reports["workload"].speedup(n_threads=4) > 1.0

    def test_matches_prophet_predict(self, prophet, profiles):
        """The batch engine must agree exactly with the facade's loop."""
        direct = prophet.predict(
            profiles["cpu"],
            threads=[2, 4],
            schedules=["static,1"],
            methods=("ff", "syn"),
            memory_model=False,
        )
        batched = BatchPredictor(prophet, jobs=1).sweep(
            {"cpu": profiles["cpu"]},
            threads=[2, 4],
            schedules=["static,1"],
            methods=("ff", "syn"),
            memory_model=False,
        )["cpu"]
        assert direct.estimates == batched.estimates

    def test_real_method(self, prophet, profiles):
        reports = BatchPredictor(prophet, jobs=1).sweep(
            profiles["cpu"], threads=[4], methods=("real",), memory_model=False
        )
        est = reports["workload"].one(method="real", n_threads=4)
        assert 1.0 < est.speedup <= 4.0

    def test_memory_model_burdens_attached(self, prophet, profiles):
        reports = BatchPredictor(prophet, jobs=1).sweep(
            profiles["mem"], threads=[8], methods=("syn",), memory_model=True
        )
        withm = reports["workload"].one(with_memory_model=True)
        assert withm.speedup > 0
        assert profiles["mem"].burden_for("mem", 8) >= 1.0

    def test_module_level_sweep(self, prophet, profiles):
        reports = sweep(
            profiles["cpu"],
            threads=[2],
            memory_model=False,
            jobs=1,
            prophet=prophet,
        )
        assert reports["workload"].speedup(n_threads=2) > 1.0


class TestRun:
    def test_unknown_workload_rejected(self, prophet, profiles):
        with pytest.raises(ConfigurationError):
            BatchPredictor(prophet, jobs=1).run(
                [SweepTask("nope", "static", 2)], profiles
            )

    def test_heterogeneous_tasks(self, prophet, profiles):
        """Non-cross-product grids: per-task schedules and method sets."""
        tasks = [
            SweepTask("cpu", "static", 2, ("syn", "real"), memory_model=False),
            SweepTask("mem", "dynamic,1", 4, ("ff",), memory_model=False),
        ]
        results = BatchPredictor(prophet, jobs=1).run(tasks, profiles)
        assert [task for task, _ in results] == tasks
        assert [e.method for e in results[0][1]] == ["syn", "real"]
        assert [e.method for e in results[1][1]] == ["ff"]
        assert results[1][1][0].schedule == "dynamic,1"

    def test_empty_task_list(self, prophet, profiles):
        assert BatchPredictor(prophet, jobs=1).run([], profiles) == []


class TestDeterminism:
    def test_parallel_matches_serial(self, prophet, profiles):
        """jobs > 1 must be byte-identical to the in-process run."""
        kwargs = dict(
            threads=[2, 4, 8],
            schedules=["static", "dynamic,1"],
            methods=("ff", "syn", "real"),
            memory_model=False,
        )
        serial = BatchPredictor(prophet, jobs=1).sweep(profiles, **kwargs)
        parallel = BatchPredictor(prophet, jobs=2).sweep(profiles, **kwargs)
        assert list(serial) == list(parallel)
        for name in serial:
            assert serial[name].estimates == parallel[name].estimates
            assert serial[name].to_table() == parallel[name].to_table()

    def test_parallel_matches_serial_with_memory_model(self, prophet, profiles):
        kwargs = dict(threads=[4, 8], methods=("syn",), memory_model=True)
        serial = BatchPredictor(prophet, jobs=1).sweep(profiles, **kwargs)
        parallel = BatchPredictor(prophet, jobs=3).sweep(profiles, **kwargs)
        for name in serial:
            assert serial[name].estimates == parallel[name].estimates

    def test_chunking_does_not_change_results(self, prophet, profiles):
        kwargs = dict(threads=[2, 4, 8], methods=("syn",), memory_model=False)
        a = BatchPredictor(prophet, jobs=2, chunks_per_job=1).sweep(
            profiles, **kwargs
        )
        b = BatchPredictor(prophet, jobs=2, chunks_per_job=8).sweep(
            profiles, **kwargs
        )
        for name in a:
            assert a[name].estimates == b[name].estimates


class TestConfig:
    def test_default_jobs_positive(self, prophet):
        assert BatchPredictor(prophet).jobs >= 1

    def test_bad_chunks_per_job(self, prophet):
        with pytest.raises(ConfigurationError):
            BatchPredictor(prophet, chunks_per_job=0)
