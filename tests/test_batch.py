"""Tests for the batch sweep engine (``repro.core.batch``)."""

import pytest

from repro import ParallelProphet
from repro.core.batch import BatchPredictor, SweepTask, SweepTaskFailure, sweep
from repro.errors import BatchError, ConfigurationError
from repro.obs import MetricsRegistry, set_metrics
from repro.simhw import MachineConfig

M = MachineConfig(n_cores=8)


def imbalanced_loop(tr):
    with tr.section("loop"):
        for i in range(16):
            with tr.task():
                tr.compute(5_000 + 1_000 * (i % 4))


def memory_loop(tr):
    from repro.simhw.memtrace import AccessPattern, MemSpec

    with tr.section("mem"):
        for _ in range(8):
            with tr.task():
                tr.compute(
                    20_000,
                    mem=MemSpec(AccessPattern.STREAMING, bytes_touched=1_000_000),
                )


@pytest.fixture(scope="module")
def prophet():
    return ParallelProphet(machine=M)


@pytest.fixture(scope="module")
def profiles(prophet):
    return {
        "cpu": prophet.profile(imbalanced_loop),
        "mem": prophet.profile(memory_loop),
    }


class TestSweepTask:
    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepTask("w", "static", 4, methods=("magic",))

    def test_bad_thread_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepTask("w", "static", 0)

    def test_hashable_and_frozen(self):
        task = SweepTask("w", "static", 4)
        assert task in {task}
        with pytest.raises(AttributeError):
            task.n_threads = 8


class TestSweepGrid:
    def test_grid_order_and_shape(self, prophet, profiles):
        reports = BatchPredictor(prophet, jobs=1).sweep(
            profiles,
            threads=[2, 4],
            schedules=["static", "static,1"],
            methods=("syn",),
            memory_model=False,
        )
        assert set(reports) == {"cpu", "mem"}
        keys = [
            (e.schedule, e.n_threads, e.method)
            for e in reports["cpu"].estimates
        ]
        # Schedules outer, threads inner — ParallelProphet.predict's order.
        assert keys == [
            ("static", 2, "syn"),
            ("static", 4, "syn"),
            ("static,1", 2, "syn"),
            ("static,1", 4, "syn"),
        ]

    def test_single_profile_shorthand(self, prophet, profiles):
        reports = BatchPredictor(prophet, jobs=1).sweep(
            profiles["cpu"], threads=[4], memory_model=False
        )
        assert list(reports) == ["workload"]
        assert reports["workload"].speedup(n_threads=4) > 1.0

    def test_matches_prophet_predict(self, prophet, profiles):
        """The batch engine must agree exactly with the facade's loop."""
        direct = prophet.predict(
            profiles["cpu"],
            threads=[2, 4],
            schedules=["static,1"],
            methods=("ff", "syn"),
            memory_model=False,
        )
        batched = BatchPredictor(prophet, jobs=1).sweep(
            {"cpu": profiles["cpu"]},
            threads=[2, 4],
            schedules=["static,1"],
            methods=("ff", "syn"),
            memory_model=False,
        )["cpu"]
        assert direct.estimates == batched.estimates

    def test_real_method(self, prophet, profiles):
        reports = BatchPredictor(prophet, jobs=1).sweep(
            profiles["cpu"], threads=[4], methods=("real",), memory_model=False
        )
        est = reports["workload"].one(method="real", n_threads=4)
        assert 1.0 < est.speedup <= 4.0

    def test_memory_model_burdens_attached(self, prophet, profiles):
        reports = BatchPredictor(prophet, jobs=1).sweep(
            profiles["mem"], threads=[8], methods=("syn",), memory_model=True
        )
        withm = reports["workload"].one(with_memory_model=True)
        assert withm.speedup > 0
        assert profiles["mem"].burden_for("mem", 8) >= 1.0

    def test_module_level_sweep(self, prophet, profiles):
        reports = sweep(
            profiles["cpu"],
            threads=[2],
            memory_model=False,
            jobs=1,
            prophet=prophet,
        )
        assert reports["workload"].speedup(n_threads=2) > 1.0


class TestRun:
    def test_unknown_workload_rejected(self, prophet, profiles):
        with pytest.raises(ConfigurationError):
            BatchPredictor(prophet, jobs=1).run(
                [SweepTask("nope", "static", 2)], profiles
            )

    def test_heterogeneous_tasks(self, prophet, profiles):
        """Non-cross-product grids: per-task schedules and method sets."""
        tasks = [
            SweepTask("cpu", "static", 2, ("syn", "real"), memory_model=False),
            SweepTask("mem", "dynamic,1", 4, ("ff",), memory_model=False),
        ]
        results = BatchPredictor(prophet, jobs=1).run(tasks, profiles)
        assert [task for task, _ in results] == tasks
        assert [e.method for e in results[0][1]] == ["syn", "real"]
        assert [e.method for e in results[1][1]] == ["ff"]
        assert results[1][1][0].schedule == "dynamic,1"

    def test_empty_task_list(self, prophet, profiles):
        assert BatchPredictor(prophet, jobs=1).run([], profiles) == []


class TestDeterminism:
    def test_parallel_matches_serial(self, prophet, profiles):
        """jobs > 1 must be byte-identical to the in-process run."""
        kwargs = dict(
            threads=[2, 4, 8],
            schedules=["static", "dynamic,1"],
            methods=("ff", "syn", "real"),
            memory_model=False,
        )
        serial = BatchPredictor(prophet, jobs=1).sweep(profiles, **kwargs)
        parallel = BatchPredictor(prophet, jobs=2).sweep(profiles, **kwargs)
        assert list(serial) == list(parallel)
        for name in serial:
            assert serial[name].estimates == parallel[name].estimates
            assert serial[name].to_table() == parallel[name].to_table()

    def test_parallel_matches_serial_with_memory_model(self, prophet, profiles):
        kwargs = dict(threads=[4, 8], methods=("syn",), memory_model=True)
        serial = BatchPredictor(prophet, jobs=1).sweep(profiles, **kwargs)
        parallel = BatchPredictor(prophet, jobs=3).sweep(profiles, **kwargs)
        for name in serial:
            assert serial[name].estimates == parallel[name].estimates

    def test_chunking_does_not_change_results(self, prophet, profiles):
        kwargs = dict(threads=[2, 4, 8], methods=("syn",), memory_model=False)
        a = BatchPredictor(prophet, jobs=2, chunks_per_job=1).sweep(
            profiles, **kwargs
        )
        b = BatchPredictor(prophet, jobs=2, chunks_per_job=8).sweep(
            profiles, **kwargs
        )
        for name in a:
            assert a[name].estimates == b[name].estimates


class TestConfig:
    def test_default_jobs_positive(self, prophet):
        assert BatchPredictor(prophet).jobs >= 1

    def test_bad_chunks_per_job(self, prophet):
        with pytest.raises(ConfigurationError):
            BatchPredictor(prophet, chunks_per_job=0)


#: A schedule spec SweepTask accepts (it keeps the raw string) but
#: Schedule.parse rejects inside the worker — the injection vehicle.
BAD_SCHEDULE = "nosuchsched"


def _mixed_tasks(good=3):
    tasks = [
        SweepTask("cpu", "static", 2 + i, ("syn",), memory_model=False)
        for i in range(good)
    ]
    # Poison the middle of the grid, not the edges.
    tasks.insert(1, SweepTask("cpu", BAD_SCHEDULE, 2, ("syn",), memory_model=False))
    return tasks


class TestFailureHandling:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failure_does_not_poison_chunk(self, prophet, profiles, jobs):
        """Other tasks in the same chunk still produce results."""
        tasks = _mixed_tasks()
        results = BatchPredictor(prophet, jobs=jobs).run(
            tasks, profiles, on_error="collect"
        )
        assert [task for task, _ in results] == tasks
        outcomes = [outcome for _, outcome in results]
        failures = [o for o in outcomes if isinstance(o, SweepTaskFailure)]
        assert len(failures) == 1
        assert failures[0].schedule == BAD_SCHEDULE
        assert failures[0].error == "ConfigurationError"
        assert BAD_SCHEDULE in failures[0].message
        # The three good tasks all succeeded, in grid order.
        good = [o for o in outcomes if not isinstance(o, SweepTaskFailure)]
        assert len(good) == 3
        assert all(ests[0].method == "syn" for ests in good)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_raise_mode_raises_after_merge(self, prophet, profiles, jobs):
        with pytest.raises(BatchError) as exc_info:
            BatchPredictor(prophet, jobs=jobs).run(tasks=_mixed_tasks(),
                                                   profiles=profiles)
        err = exc_info.value
        assert len(err.failures) == 1
        assert isinstance(err.failures[0], SweepTaskFailure)
        assert BAD_SCHEDULE in str(err)

    def test_collect_matches_between_job_counts(self, prophet, profiles):
        """Failure placement is deterministic across pool sizes."""
        tasks = _mixed_tasks()
        serial = BatchPredictor(prophet, jobs=1).run(
            tasks, profiles, on_error="collect"
        )
        parallel = BatchPredictor(prophet, jobs=2).run(
            tasks, profiles, on_error="collect"
        )
        assert serial == parallel

    def test_sweep_attaches_failures_to_report(self, prophet, profiles):
        reports = BatchPredictor(prophet, jobs=1).sweep(
            {"cpu": profiles["cpu"]},
            threads=[2, 4],
            schedules=["static", BAD_SCHEDULE],
            methods=("syn",),
            memory_model=False,
            on_error="collect",
        )
        report = reports["cpu"]
        assert len(report.failures) == 2  # two thread counts × bad schedule
        assert len(report.estimates) == 2
        assert "2 grid point(s) failed" in report.to_table()

    def test_sweep_raises_by_default(self, prophet, profiles):
        with pytest.raises(BatchError):
            BatchPredictor(prophet, jobs=1).sweep(
                {"cpu": profiles["cpu"]},
                threads=[2],
                schedules=[BAD_SCHEDULE],
                methods=("syn",),
                memory_model=False,
            )

    def test_bad_on_error_rejected(self, prophet, profiles):
        with pytest.raises(ConfigurationError):
            BatchPredictor(prophet, jobs=1).run(
                [], profiles, on_error="explode"
            )


class TestMetricsMerge:
    @pytest.fixture()
    def fresh_metrics(self):
        mine = MetricsRegistry()
        old = set_metrics(mine)
        try:
            yield mine
        finally:
            set_metrics(old)

    def test_parallel_counters_match_serial(self, prophet, profiles,
                                            fresh_metrics):
        """Worker snapshots merged in submission order equal the in-process
        counters: the determinism guarantee extends to metrics."""
        kwargs = dict(threads=[2, 4], methods=("syn",), memory_model=False)
        BatchPredictor(prophet, jobs=1).sweep(profiles, **kwargs)
        serial_counters = fresh_metrics.snapshot()["counters"]
        assert serial_counters.get("syn.replays") == 4.0  # 2 workloads × 2 t

        fresh_metrics.reset()
        BatchPredictor(prophet, jobs=2).sweep(profiles, **kwargs)
        parallel_counters = fresh_metrics.snapshot()["counters"]
        assert parallel_counters == serial_counters

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_task_errors_counted(self, prophet, profiles, jobs,
                                 fresh_metrics):
        BatchPredictor(prophet, jobs=jobs).run(
            _mixed_tasks(), profiles, on_error="collect"
        )
        assert fresh_metrics.counter_value("batch.task.errors") == 1.0
        assert fresh_metrics.counter_value("batch.tasks") == 4.0


class TestPersistentCaches:
    """The daemon-facing cache surface: reset(), cache_info(), and warm
    executor/engine reuse across run() calls on one predictor instance."""

    def test_cache_info_shape(self, prophet):
        info = BatchPredictor(prophet, jobs=1).cache_info()
        assert set(info) == {"executors", "engines", "section_memo"}
        assert info["executors"] == {"size": 0, "maxsize": 64}
        assert info["engines"]["size"] == 0
        assert "hits" in info["section_memo"]

    def test_run_populates_persistent_caches(self, prophet, profiles):
        # Eager backend: the columnar engine would answer these REAL
        # points analytically and never build a replay executor.
        predictor = BatchPredictor(prophet, jobs=1, backend="eager")
        predictor.sweep(
            profiles, threads=[2, 4], methods=("real",), memory_model=False
        )
        info = predictor.cache_info()
        assert info["executors"]["size"] > 0

    def test_engine_cache_hits_on_repeat(self, prophet, profiles):
        predictor = BatchPredictor(prophet, jobs=1, backend="columnar")
        kwargs = dict(threads=[2, 4], methods=("syn",), memory_model=False)
        predictor.sweep(profiles, **kwargs)
        cold = predictor.cache_info()["engines"]
        assert cold["misses"] == len(profiles) and cold["hits"] == 0
        predictor.sweep(profiles, **kwargs)
        warm = predictor.cache_info()["engines"]
        assert warm["misses"] == cold["misses"]
        assert warm["hits"] == len(profiles)

    def test_repeat_run_results_identical(self, prophet, profiles):
        predictor = BatchPredictor(prophet, jobs=1)
        kwargs = dict(
            threads=[2, 4], methods=("syn", "real"), memory_model=False
        )
        cold = predictor.sweep(profiles, **kwargs)
        warm = predictor.sweep(profiles, **kwargs)
        for name in profiles:
            cold_rows = [
                (e.method, e.schedule, e.n_threads, e.speedup)
                for e in cold[name].estimates
            ]
            warm_rows = [
                (e.method, e.schedule, e.n_threads, e.speedup)
                for e in warm[name].estimates
            ]
            assert cold_rows == warm_rows

    def test_reset_empties_caches(self, prophet, profiles):
        predictor = BatchPredictor(prophet, jobs=1)
        predictor.sweep(
            profiles, threads=[2], methods=("real",), memory_model=False
        )
        predictor.reset()
        info = predictor.cache_info()
        assert info["executors"]["size"] == 0
        assert info["engines"]["size"] == 0

    def test_caches_trimmed_to_bound(self, prophet, profiles):
        predictor = BatchPredictor(prophet, jobs=1)
        predictor.executor_cache_size = 2
        predictor.sweep(
            profiles,
            threads=[2, 4],
            schedules=["static", "static,1", "dynamic,1"],
            methods=("real",),
            memory_model=False,
        )
        assert predictor.cache_info()["executors"]["size"] <= 2

    def test_pool_path_unaffected_by_instance_caches(self, prophet, profiles):
        kwargs = dict(threads=[2, 4], methods=("syn",), memory_model=False)
        warm = BatchPredictor(prophet, jobs=1)
        warm.sweep(profiles, **kwargs)
        warm_again = warm.sweep(profiles, **kwargs)
        pool = BatchPredictor(prophet, jobs=2).sweep(profiles, **kwargs)
        for name in profiles:
            assert [
                (e.method, e.schedule, e.n_threads, e.speedup)
                for e in pool[name].estimates
            ] == [
                (e.method, e.schedule, e.n_threads, e.speedup)
                for e in warm_again[name].estimates
            ]
