"""Tests for the OpenMP 3.0-style task runtime."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import OmpTaskPool, RuntimeOverheads
from repro.simhw import MachineConfig
from repro.simos import Compute, SimKernel

ZERO_OH = RuntimeOverheads().scaled(0.0)


def run_pool(machine, root_factory, n_threads, overheads=ZERO_OH):
    kernel = SimKernel(machine)
    pool = OmpTaskPool(kernel, n_threads=n_threads, overheads=overheads)

    def master():
        yield from pool.run(root_factory)

    kernel.spawn(master(), name="master")
    end = kernel.run()
    return pool, end


class TestTaskSemantics:
    def test_tasks_run_in_parallel(self, machine4):
        def leaf(ctx):
            yield Compute(cycles=100_000)

        def root(ctx):
            for _ in range(3):
                yield from ctx.task_spawn(leaf)
            yield from leaf(ctx)
            yield from ctx.taskwait()

        _, end = run_pool(machine4, root, 4)
        assert end == pytest.approx(100_000.0, rel=0.02)

    def test_every_task_runs_once(self, machine4):
        ran = []

        def leaf(tag):
            def f(ctx):
                ran.append(tag)
                yield Compute(cycles=1_000)

            return f

        def root(ctx):
            for i in range(12):
                yield from ctx.task_spawn(leaf(i))
            yield from ctx.taskwait()

        run_pool(machine4, root, 3)
        assert sorted(ran) == list(range(12))

    def test_taskwait_covers_children(self, machine4):
        from repro.simos import GetTime

        after = []

        def slow(ctx):
            yield Compute(cycles=60_000)

        def root(ctx):
            yield from ctx.task_spawn(slow)
            yield from ctx.taskwait()
            after.append((yield GetTime()))

        run_pool(machine4, root, 2)
        assert after[0] >= 60_000.0

    def test_implicit_taskwait_at_end(self, machine4):
        ran = []

        def grandchild(ctx):
            ran.append("gc")
            yield Compute(cycles=40_000)

        def child(ctx):
            yield from ctx.task_spawn(grandchild)
            yield Compute(cycles=500)
            # no explicit taskwait

        def root(ctx):
            yield from ctx.task_spawn(child)
            yield from ctx.taskwait()
            assert ran == ["gc"]

        run_pool(machine4, root, 2)

    def test_recursive_tasks_scale(self, machine4):
        def rec(depth):
            def f(ctx):
                if depth == 0:
                    yield Compute(cycles=40_000)
                    return
                yield from ctx.task_spawn(rec(depth - 1))
                yield from rec(depth - 1)(ctx)
                yield from ctx.taskwait()

            return f

        pool, end = run_pool(machine4, rec(4), 4)
        # 16 leaves x 40k = 640k serial on 4 workers.
        assert end == pytest.approx(160_000.0, rel=0.15)

    def test_task_loop(self, machine4):
        ran = []

        def body(i):
            def f(ctx):
                ran.append(i)
                yield Compute(cycles=2_000)

            return f

        def root(ctx):
            yield from ctx.task_loop([body(i) for i in range(10)])
            assert sorted(ran) == list(range(10))

        run_pool(machine4, root, 4)

    def test_single_thread_serializes(self, machine4):
        def leaf(ctx):
            yield Compute(cycles=10_000)

        def root(ctx):
            yield from ctx.task_loop([leaf] * 6)

        _, end = run_pool(machine4, root, 1)
        assert end == pytest.approx(60_000.0, rel=0.01)

    def test_worker_count_validated(self, machine4):
        kernel = SimKernel(machine4)
        with pytest.raises(ConfigurationError):
            OmpTaskPool(kernel, n_threads=0)

    def test_stats(self, machine4):
        def leaf(ctx):
            yield Compute(cycles=100)

        def root(ctx):
            yield from ctx.task_loop([leaf] * 5)

        pool, _ = run_pool(machine4, root, 2)
        assert pool.spawned == 5
        assert pool.tasks_run == 6  # root + 5


class TestExecutorIntegration:
    def test_omp_task_paradigm_replay(self, machine4):
        from repro.core.executor import ParallelExecutor, ReplayMode
        from repro.core.profiler import IntervalProfiler

        def program(tr):
            with tr.section("loop"):
                for _ in range(8):
                    with tr.task():
                        tr.compute(50_000)

        profile = IntervalProfiler(machine4).profile(program)
        ex = ParallelExecutor(machine4, paradigm="omp_task", overheads=ZERO_OH)
        r = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        assert r.speedup == pytest.approx(4.0, rel=0.1)

    def test_omp_task_nested_scales(self, machine4):
        from repro.core.executor import ParallelExecutor, ReplayMode
        from repro.core.profiler import IntervalProfiler

        def program(tr):
            with tr.section("outer"):
                for _ in range(2):
                    with tr.task():
                        with tr.section("inner"):
                            for _ in range(2):
                                with tr.task():
                                    tr.compute(100_000)

        profile = IntervalProfiler(machine4).profile(program)
        ex = ParallelExecutor(machine4, paradigm="omp_task", overheads=ZERO_OH)
        r = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        # Unlike nested physical teams, tasks flatten into one pool.
        assert r.speedup == pytest.approx(4.0, rel=0.2)

    def test_dispatch_cost_charged(self, machine4):
        oh = RuntimeOverheads().scaled(0.0).with_(omp_task_dispatch=2_000.0)

        def leaf(ctx):
            yield Compute(cycles=0)

        def root(ctx):
            yield from ctx.task_loop([leaf] * 10)

        _, end = run_pool(machine4, root, 1, overheads=oh)
        assert end >= 10 * 2_000.0


class TestContextSwitchCost:
    def test_oversubscription_pays_switches(self):
        from repro.simos import Join, Spawn

        def spin():
            yield Compute(cycles=100_000)

        def run(cs):
            machine = MachineConfig(
                n_cores=2, timeslice_cycles=10_000.0, context_switch_cycles=cs
            )
            kernel = SimKernel(machine)

            def main():
                ts = []
                for _ in range(4):
                    ts.append((yield Spawn(spin())))
                for t in ts:
                    yield Join(t)

            kernel.spawn(main())
            return kernel.run()

        free = run(0.0)
        costly = run(2_000.0)
        assert costly > free * 1.1

    def test_no_cost_without_switching(self):
        from repro.simos import Join, Spawn

        machine = MachineConfig(n_cores=4, context_switch_cycles=5_000.0)
        kernel = SimKernel(machine)

        def spin():
            yield Compute(cycles=50_000)

        def main():
            ts = []
            for _ in range(3):
                ts.append((yield Spawn(spin())))
            for t in ts:
                yield Join(t)

        kernel.spawn(main())
        end = kernel.run()
        # Each thread gets its own core: only the initial pickups differ
        # from the master, a one-off 5k.
        assert end <= 56_000.0
